//! State Skip LFSR test set embedding — the primary contribution of
//! *"State Skip LFSRs: Bridging the Gap between Test Data Compression
//! and Test Set Embedding for IP Cores"* (Tenentes, Kavousianos,
//! Kalligeros; DATE 2008), reproduced in Rust.
//!
//! # The flow
//!
//! 1. **Window-based LFSR reseeding** ([`WindowEncoder`]): every n-bit
//!    seed is expanded on-chip into a window of `L` pseudorandom test
//!    vectors; a greedy algorithm packs as many test cubes as possible
//!    into each window by solving GF(2) systems over the seed bits
//!    (Section 2 of the paper). High compression, but the test
//!    sequence grows to `seeds x L` vectors.
//! 2. **Fortuitous embedding detection** ([`EmbeddingMap`]): after the
//!    seeds are fixed, sparse cubes turn out to be embedded in many
//!    window positions by chance; the reduction step exploits this.
//! 3. **Segment labelling and selection** ([`SegmentPlan`]): windows
//!    are cut into `L/S` segments; a set-cover pass picks the minimum
//!    useful segments; seeds are grouped by useful-segment count and
//!    truncated after their last useful segment (Section 3.2).
//! 4. **State Skip traversal** ([`TslReport`]): useless segments are
//!    traversed with `T^k` jumps — `k` states per clock — shrinking
//!    the applied test sequence by up to the paper's reported 96%
//!    while storing exactly the same seeds (same TDV).
//! 5. **Decompression architecture** ([`Decompressor`]): the counter
//!    pipeline + Mode Select unit of Fig. 3, simulated cycle-accurately
//!    to prove every cube is really applied.
//!
//! # Quickstart: the staged [`Engine`]
//!
//! [`Engine::builder`] validates the knobs once; each stage returns a
//! typed artifact you can inspect before continuing:
//!
//! ```
//! use ss_core::Engine;
//! use ss_testdata::{generate_test_set, CubeProfile};
//!
//! # fn main() -> Result<(), ss_core::SchemeError> {
//! let set = generate_test_set(&CubeProfile::mini(), 1);
//! let engine = Engine::builder().window(40).segment(5).speedup(8).build()?;
//!
//! // all stages at once ...
//! let report = engine.run(&set)?;
//! assert!(report.tsl_proposed < report.tsl_original);
//!
//! // ... or stop and inspect between stages
//! let encoded = engine.encode(&set)?;       // seeds + TDV fixed here
//! let seeds = encoded.seed_count();
//! let embedded = encoded.embed();           // fortuitous embeddings
//! let segmented = embedded.segment();       // minimal useful segments
//! let tsl = segmented.tsl();                // State Skip traversal
//! assert_eq!(report.tsl_proposed, tsl.vectors);
//! assert_eq!(report.seeds, seeds);
//! # Ok(())
//! # }
//! ```
//!
//! # Comparing schemes
//!
//! The paper's tables compare State Skip against classical reseeding
//! and pure test set embedding. All three are [`CompressionScheme`]
//! implementations, runnable as trait objects through
//! [`Engine::run_all`] (in parallel, against one shared
//! [`HardwareCtx`]) and tabulated with [`comparison_table`]:
//!
//! ```
//! use ss_core::{comparison_table, Baseline11, ClassicalReseeding, CompressionScheme,
//!               Engine, StateSkip};
//! use ss_testdata::{generate_test_set, CubeProfile};
//!
//! # fn main() -> Result<(), ss_core::SchemeError> {
//! let set = generate_test_set(&CubeProfile::mini(), 1);
//! let engine = Engine::builder().window(24).segment(4).speedup(6).build()?;
//! let schemes: Vec<Box<dyn CompressionScheme>> = vec![
//!     Box::new(StateSkip),
//!     Box::new(ClassicalReseeding),
//!     Box::new(Baseline11),
//! ];
//! let reports = engine.run_all(&schemes, &set)?;
//! println!("{}", comparison_table(&reports));
//! assert_eq!(reports.len(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! Multi-core SoCs run all cores in parallel with
//! [`SocPlan::run_batch`]. The legacy [`Pipeline`] API remains as a
//! thin shim over the same stages (bit-identical results) for one
//! release; see the `MIGRATION` section of `CHANGES.md`.
//!
//! # File workloads
//!
//! User-supplied workloads enter through [`parse_workload`] (an
//! ISCAS'89 `.bench` netlist + a `01X` cube-set file, cross-validated)
//! and [`sequence_coverage`] fault-simulates the decompressor's actual
//! output against the ingested netlist; named ready-made pairs live in
//! `ss_testdata::WorkloadRegistry`. The `state-skip` binary exposes the
//! same path as `run --bench <f> --cubes <f>` and `workloads`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod artifacts;
mod baseline11;
mod builder;
mod classical;
mod cost;
mod decompressor;
mod embedding;
mod encoder;
mod error;
mod expr_table;
mod literature;
mod modeselect;
mod pipeline;
mod report;
mod rtl;
mod scheme;
mod soc;
mod workload_io;

pub use artifacts::{Embedded, Encoded, HardwareCtx, Segmented};
pub use baseline11::baseline11_tsl;
pub use builder::{Engine, EngineBuilder, EngineConfig};
pub use classical::{classical_reseeding, ClassicalResult};
pub use cost::{DecompressorCost, DecompressorCostInputs};
pub use decompressor::{Decompressor, DecompressorTrace};
pub use embedding::EmbeddingMap;
pub use encoder::{EncodeError, EncodedSeed, EncodingResult, Placement, WindowEncoder};
pub use error::SchemeError;
pub use expr_table::ExprTable;
pub use literature::{
    lit_table3, lit_table4, LitEmbeddingRow, LitMethod, LitTable4Row, Table1Row, Table2Row,
    PAPER_TABLE1, PAPER_TABLE2, PAPER_TSL_TABLE2,
};
pub use modeselect::ModeSelect;
#[allow(deprecated)]
pub use pipeline::expand_seed;
pub use pipeline::{
    try_expand_seed, try_expand_seed_packed, PackedWindowExpander, Pipeline, PipelineConfig,
    PipelineError, PipelineReport,
};
pub use report::{improvement_percent, Table};
pub use rtl::emit_decompressor_rtl;
pub use scheme::{
    comparison_table, Baseline11, ClassicalReseeding, CompressionScheme, SchemeReport, StateSkip,
};
pub use soc::{estimated_core_area_ge, SocCore, SocPlan};
pub use workload_io::{
    parse_workload, sequence_coverage, CoverageReport, FileWorkload, WorkloadIoError,
};

/// Segment labelling, selection and TSL accounting (Section 3.2).
pub mod segments;

pub use segments::{SegmentPlan, TslReport};
