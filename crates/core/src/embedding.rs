//! Fortuitous-embedding detection.
//!
//! Once the seeds are solved, every window vector is a concrete
//! pseudorandom pattern. Sparse cubes — the majority of an uncompacted
//! test set — happen to match many of those patterns beyond the
//! position they were deliberately encoded at. The test-sequence
//! reduction step (Section 3.2) feeds on exactly this: the more places
//! a cube is embedded, the more freedom the useful-segment selection
//! has.

use ss_gf2::{BitVec, PATTERNS_PER_BLOCK};
use ss_lfsr::{Lfsr, PhaseShifter};
use ss_testdata::TestSet;

use crate::encoder::EncodingResult;
use crate::pipeline::{try_expand_seed, PackedWindowExpander};

/// For every cube, every `(seed, window position)` whose expanded
/// vector embeds it — intentional and fortuitous matches alike.
///
/// # Example
///
/// See [`Pipeline`](crate::Pipeline) for the full flow; the map is
/// exposed as [`PipelineReport::embedding`](crate::PipelineReport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddingMap {
    /// `matches[cube]` = sorted `(seed, position)` pairs.
    matches: Vec<Vec<(usize, usize)>>,
    window: usize,
    seed_count: usize,
}

impl EmbeddingMap {
    /// Expands every seed and records all cube matches — the primary,
    /// word-parallel path: each seed's window is generated as packed
    /// 64-position blocks ([`PackedWindowExpander`]) and every cube
    /// is matched against a whole block at once with
    /// [`TestCube::match_mask`](ss_testdata::TestCube::match_mask).
    /// Results are bit-identical to [`EmbeddingMap::build_scalar`],
    /// which property tests pin.
    ///
    /// `lfsr` and `shifter` must be the same hardware the encoding was
    /// computed against, otherwise the intentional placements will not
    /// even match (and [`EmbeddingMap::validate`] will say so).
    pub fn build(
        set: &TestSet,
        result: &EncodingResult,
        lfsr: &Lfsr,
        shifter: &PhaseShifter,
    ) -> Self {
        Self::build_threaded(set, result, lfsr, shifter, 1)
    }

    /// [`build`](Self::build) with the seeds partitioned across up to
    /// `threads` scoped worker threads. Each worker expands and
    /// matches a contiguous seed range against the shared (read-only)
    /// expander with its own packed scratch buffer; per-cube match
    /// lists are concatenated in seed-range order, so the map is
    /// **bit-identical at every thread count**.
    pub fn build_threaded(
        set: &TestSet,
        result: &EncodingResult,
        lfsr: &Lfsr,
        shifter: &PhaseShifter,
        threads: usize,
    ) -> Self {
        let expander = PackedWindowExpander::new(lfsr, shifter, set.config(), result.window)
            .expect("encoding and hardware share one geometry");
        let seed_count = result.seeds.len();
        let threads = threads.clamp(1, seed_count.max(1));
        let match_range = |range: std::ops::Range<usize>| {
            let mut matches = vec![Vec::new(); set.len()];
            let mut packed = ss_gf2::PackedPatterns::zeros(0, 0);
            for si in range {
                expander
                    .expand_into(&result.seeds[si].seed, &mut packed)
                    .expect("encoded seeds match the LFSR width");
                for (ci, cube) in set.iter().enumerate() {
                    for block in 0..packed.block_count() {
                        let mut mask = cube.match_mask(&packed, block);
                        while mask != 0 {
                            let v = block * PATTERNS_PER_BLOCK + mask.trailing_zeros() as usize;
                            matches[ci].push((si, v));
                            mask &= mask - 1;
                        }
                    }
                }
            }
            matches
        };
        let matches = if threads <= 1 {
            match_range(0..seed_count)
        } else {
            // contiguous seed ranges per worker; concatenating the
            // per-cube lists in range order preserves the sequential
            // (seed, position) ordering exactly
            let chunk = seed_count.div_ceil(threads);
            let partials = crate::builder::run_pool(threads, threads, |w| {
                match_range(w * chunk..((w + 1) * chunk).min(seed_count))
            });
            let mut matches = vec![Vec::new(); set.len()];
            for partial in partials {
                for (ci, mut list) in partial.into_iter().enumerate() {
                    matches[ci].append(&mut list);
                }
            }
            matches
        };
        EmbeddingMap {
            matches,
            window: result.window,
            seed_count,
        }
    }

    /// The scalar reference oracle: expands every seed one vector at a
    /// time ([`try_expand_seed`]) and matches cubes per vector.
    /// Kept only to pin [`EmbeddingMap::build`] — the two must agree
    /// bit for bit on every workload.
    pub fn build_scalar(
        set: &TestSet,
        result: &EncodingResult,
        lfsr: &Lfsr,
        shifter: &PhaseShifter,
    ) -> Self {
        let mut matches = vec![Vec::new(); set.len()];
        for (si, enc) in result.seeds.iter().enumerate() {
            let vectors = try_expand_seed(lfsr, shifter, set.config(), &enc.seed, result.window)
                .expect("encoding and hardware share one geometry");
            for (v, vector) in vectors.iter().enumerate() {
                for ci in set.matching_cubes(vector) {
                    matches[ci].push((si, v));
                }
            }
        }
        EmbeddingMap {
            matches,
            window: result.window,
            seed_count: result.seeds.len(),
        }
    }

    /// Builds the map from pre-expanded windows (used by tests and by
    /// callers that already hold the vectors).
    pub fn from_windows(set: &TestSet, windows: &[Vec<BitVec>]) -> Self {
        let window = windows.first().map_or(0, Vec::len);
        let mut matches = vec![Vec::new(); set.len()];
        for (si, vectors) in windows.iter().enumerate() {
            for (v, vector) in vectors.iter().enumerate() {
                for ci in set.matching_cubes(vector) {
                    matches[ci].push((si, v));
                }
            }
        }
        EmbeddingMap {
            matches,
            window,
            seed_count: windows.len(),
        }
    }

    /// All `(seed, position)` embeddings of `cube`.
    ///
    /// # Panics
    ///
    /// Panics if `cube` is out of range.
    pub fn matches(&self, cube: usize) -> &[(usize, usize)] {
        &self.matches[cube]
    }

    /// Number of cubes tracked.
    pub fn cube_count(&self) -> usize {
        self.matches.len()
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of seeds.
    pub fn seed_count(&self) -> usize {
        self.seed_count
    }

    /// `true` when every cube is embedded somewhere — which must hold
    /// whenever the map was built against the same hardware the
    /// encoding used (each cube at least matches its intentional
    /// placement).
    pub fn validate(&self) -> bool {
        self.matches.iter().all(|m| !m.is_empty())
    }

    /// Mean embeddings per cube — a measure of how much fortuitous
    /// slack the reduction step can exploit.
    pub fn mean_embeddings(&self) -> f64 {
        if self.matches.is_empty() {
            return 0.0;
        }
        self.matches.iter().map(Vec::len).sum::<usize>() as f64 / self.matches.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_testdata::{ScanConfig, TestCube};

    fn tiny_set() -> TestSet {
        let mut set = TestSet::new(ScanConfig::new(1, 4).unwrap());
        set.push("1XXX".parse::<TestCube>().unwrap()).unwrap();
        set.push("XX00".parse::<TestCube>().unwrap()).unwrap();
        set.push("1111".parse::<TestCube>().unwrap()).unwrap();
        set
    }

    fn v(bits: [u8; 4]) -> BitVec {
        BitVec::from_bits(bits.iter().map(|&b| b == 1))
    }

    #[test]
    fn from_windows_finds_all_matches() {
        let set = tiny_set();
        let windows = vec![
            vec![v([1, 0, 0, 0]), v([0, 1, 0, 0])], // seed 0
            vec![v([1, 1, 1, 1]), v([1, 0, 1, 1])], // seed 1
        ];
        let map = EmbeddingMap::from_windows(&set, &windows);
        // cube 0 "1XXX": vectors (0,0), (1,0), (1,1)
        assert_eq!(map.matches(0), &[(0, 0), (1, 0), (1, 1)]);
        // cube 1 "XX00": vectors (0,0), (0,1)
        assert_eq!(map.matches(1), &[(0, 0), (0, 1)]);
        // cube 2 "1111": vector (1,0)
        assert_eq!(map.matches(2), &[(1, 0)]);
        assert!(map.validate());
        assert!((map.mean_embeddings() - 2.0).abs() < 1e-9);
        assert_eq!(map.window(), 2);
        assert_eq!(map.seed_count(), 2);
    }

    #[test]
    fn packed_build_matches_the_scalar_oracle() {
        use crate::artifacts::Encoded;
        use crate::builder::Engine;
        use ss_testdata::{generate_test_set, CubeProfile};

        let set = generate_test_set(&CubeProfile::mini(), 1);
        let engine = Engine::builder()
            .window(30)
            .segment(5)
            .speedup(6)
            .build()
            .unwrap();
        let ctx = engine.synthesize(&set).unwrap();
        let encoded = Encoded::from_ctx_ref(&set, &ctx).unwrap();
        let packed = EmbeddingMap::build(&set, encoded.encoding(), ctx.lfsr(), ctx.shifter());
        let scalar =
            EmbeddingMap::build_scalar(&set, encoded.encoding(), ctx.lfsr(), ctx.shifter());
        assert_eq!(packed, scalar, "embedding maps must agree bit for bit");
        assert!(packed.validate());
        // the threaded build is the same map at every worker count,
        // including widths beyond the seed count
        for threads in [2usize, 3, 64] {
            let threaded = EmbeddingMap::build_threaded(
                &set,
                encoded.encoding(),
                ctx.lfsr(),
                ctx.shifter(),
                threads,
            );
            assert_eq!(threaded, scalar, "threads={threads}");
        }
    }

    #[test]
    fn validate_fails_on_unmatched_cube() {
        let set = tiny_set();
        let windows = vec![vec![v([0, 0, 0, 0])]];
        let map = EmbeddingMap::from_windows(&set, &windows);
        assert!(!map.validate(), "cube 2 '1111' matches nothing");
    }
}
