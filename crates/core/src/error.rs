//! The unified error hierarchy of the compression schemes.
//!
//! Every entry point of this crate — the staged [`Engine`], the
//! [`CompressionScheme`] implementations and the legacy
//! [`Pipeline`] shim — reports one error type, [`SchemeError`], which
//! wraps the layer-specific errors ([`EncodeError`],
//! [`ss_lfsr::LfsrError`], …) and chains them through
//! [`std::error::Error::source`].
//!
//! [`Engine`]: crate::Engine
//! [`CompressionScheme`]: crate::CompressionScheme
//! [`Pipeline`]: crate::Pipeline
//! [`EncodeError`]: crate::EncodeError

use std::error::Error;
use std::fmt;

use ss_gf2::PrimitivePolyError;
use ss_lfsr::{LfsrError, PhaseShifterError, SkipError};

use crate::encoder::EncodeError;

/// Any failure while configuring or running a compression scheme.
///
/// The enum is `#[non_exhaustive]`: future layers can add variants
/// without a breaking release. Inner errors are reachable through
/// [`Error::source`] for chained reporting.
#[derive(Debug)]
#[non_exhaustive]
pub enum SchemeError {
    /// Invalid configuration (message explains the constraint).
    BadConfig(String),
    /// No primitive polynomial for the requested LFSR size.
    Poly(PrimitivePolyError),
    /// LFSR construction failed.
    Lfsr(LfsrError),
    /// Phase shifter synthesis failed.
    PhaseShifter(PhaseShifterError),
    /// State Skip circuit construction failed.
    Skip(SkipError),
    /// Seed encoding failed.
    Encode(EncodeError),
}

impl SchemeError {
    /// A configuration error with the given explanation.
    pub fn bad_config(message: impl Into<String>) -> Self {
        SchemeError::BadConfig(message.into())
    }
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::BadConfig(msg) => write!(f, "bad scheme configuration: {msg}"),
            SchemeError::Poly(e) => write!(f, "polynomial selection: {e}"),
            SchemeError::Lfsr(e) => write!(f, "LFSR construction: {e}"),
            SchemeError::PhaseShifter(e) => write!(f, "phase shifter synthesis: {e}"),
            SchemeError::Skip(e) => write!(f, "State Skip circuit construction: {e}"),
            SchemeError::Encode(e) => write!(f, "seed encoding: {e}"),
        }
    }
}

impl Error for SchemeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchemeError::BadConfig(_) => None,
            SchemeError::Poly(e) => Some(e),
            SchemeError::Lfsr(e) => Some(e),
            SchemeError::PhaseShifter(e) => Some(e),
            SchemeError::Skip(e) => Some(e),
            SchemeError::Encode(e) => Some(e),
        }
    }
}

impl From<PrimitivePolyError> for SchemeError {
    fn from(e: PrimitivePolyError) -> Self {
        SchemeError::Poly(e)
    }
}

impl From<LfsrError> for SchemeError {
    fn from(e: LfsrError) -> Self {
        SchemeError::Lfsr(e)
    }
}

impl From<PhaseShifterError> for SchemeError {
    fn from(e: PhaseShifterError) -> Self {
        SchemeError::PhaseShifter(e)
    }
}

impl From<SkipError> for SchemeError {
    fn from(e: SkipError) -> Self {
        SchemeError::Skip(e)
    }
}

impl From<EncodeError> for SchemeError {
    fn from(e: EncodeError) -> Self {
        SchemeError::Encode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain_to_the_inner_error() {
        let inner = EncodeError::GeometryMismatch;
        let inner_text = inner.to_string();
        let err = SchemeError::from(inner);
        let source = err.source().expect("wrapped errors expose a source");
        assert_eq!(source.to_string(), inner_text);
        assert!(SchemeError::bad_config("x").source().is_none());
    }

    #[test]
    fn display_includes_the_layer_and_the_cause() {
        let err = SchemeError::from(EncodeError::GeometryMismatch);
        let text = err.to_string();
        assert!(text.contains("seed encoding"), "{text}");
        let cfg = SchemeError::bad_config("window must be >= 1");
        assert!(cfg.to_string().contains("window must be >= 1"));
    }
}
