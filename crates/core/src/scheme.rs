//! The polymorphic compression-scheme API.
//!
//! The paper frames State Skip as one point in a *family* of
//! reseeding/embedding schemes and compares it against classical
//! reseeding and pure test set embedding. [`CompressionScheme`] makes
//! that family a first-class abstraction: every scheme consumes the
//! same test set and [`HardwareCtx`] and produces one
//! [`SchemeReport`], so `Box<dyn CompressionScheme>` collections can
//! be executed and tabulated uniformly (see
//! [`Engine::run_all`](crate::Engine::run_all) and
//! [`comparison_table`]).

use ss_testdata::TestSet;

use crate::artifacts::{Encoded, HardwareCtx};
use crate::baseline11::baseline11_tsl;
use crate::encoder::WindowEncoder;
use crate::error::SchemeError;
use crate::expr_table::ExprTable;
use crate::report::{improvement_percent, Table};

/// A test-data-compression scheme runnable against shared hardware.
///
/// Implementations must be `Send + Sync`: the batch drivers execute
/// schemes on scoped threads against one shared [`HardwareCtx`].
pub trait CompressionScheme: Send + Sync {
    /// Short scheme name used in reports and tables.
    fn name(&self) -> &str;

    /// Runs the scheme on `set` against the synthesised hardware.
    ///
    /// # Errors
    ///
    /// [`SchemeError`] when the set cannot be encoded under this
    /// scheme or the hardware context is unsuitable.
    fn compress(&self, set: &TestSet, ctx: &HardwareCtx) -> Result<SchemeReport, SchemeError>;
}

/// The unified result every scheme reports: the four numbers the
/// paper's tables compare.
///
/// `#[non_exhaustive]`: construct it with [`SchemeReport::new`] so
/// future fields stay non-breaking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SchemeReport {
    /// Scheme name, from [`CompressionScheme::name`].
    pub scheme: String,
    /// LFSR size `n` used.
    pub lfsr_size: usize,
    /// Number of stored seeds.
    pub seeds: usize,
    /// Test data volume in bits.
    pub tdv: usize,
    /// TSL before any sequence reduction (the scheme's raw length).
    pub tsl_original: u64,
    /// TSL the scheme actually applies.
    pub tsl: u64,
}

impl SchemeReport {
    /// Assembles a report.
    pub fn new(
        scheme: impl Into<String>,
        lfsr_size: usize,
        seeds: usize,
        tdv: usize,
        tsl_original: u64,
        tsl: u64,
    ) -> Self {
        SchemeReport {
            scheme: scheme.into(),
            lfsr_size,
            seeds,
            tdv,
            tsl_original,
            tsl,
        }
    }

    /// TSL improvement over the scheme's own unreduced sequence,
    /// percent (the paper's relation (2)).
    pub fn improvement_percent(&self) -> f64 {
        improvement_percent(self.tsl_original, self.tsl)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: n={}, {} seeds, TDV {} bits, TSL {} -> {} vectors ({:.1}% shorter)",
            self.scheme,
            self.lfsr_size,
            self.seeds,
            self.tdv,
            self.tsl_original,
            self.tsl,
            self.improvement_percent()
        )
    }
}

/// One comparison [`Table`] over any number of scheme reports — the
/// shape of the paper's Tables 1-3.
pub fn comparison_table(reports: &[SchemeReport]) -> Table {
    let mut table = Table::new(["scheme", "n", "seeds", "TDV (bits)", "TSL", "impr"]);
    for r in reports {
        table.add_row([
            r.scheme.clone(),
            r.lfsr_size.to_string(),
            r.seeds.to_string(),
            r.tdv.to_string(),
            r.tsl.to_string(),
            format!("{:.1}%", r.improvement_percent()),
        ]);
    }
    table
}

/// The proposed scheme: window-based reseeding, fortuitous-embedding
/// detection, segment selection and State Skip traversal, using the
/// window/segment/speedup of the bound [`HardwareCtx`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateSkip;

impl CompressionScheme for StateSkip {
    fn name(&self) -> &str {
        "state-skip"
    }

    fn compress(&self, set: &TestSet, ctx: &HardwareCtx) -> Result<SchemeReport, SchemeError> {
        // the same staged flow Engine::run uses — one implementation,
        // no drift between SchemeReport and PipelineReport numbers
        let segmented = Encoded::from_ctx_ref(set, ctx)?.embed().segment();
        let tsl = segmented.tsl();
        let encoding = segmented.encoding();
        Ok(SchemeReport::new(
            self.name(),
            ctx.lfsr_size(),
            encoding.seeds.len(),
            encoding.tdv(),
            encoding.tsl_original() as u64,
            tsl.vectors,
        ))
    }
}

/// Classical LFSR reseeding (the paper's `L = 1` baseline): every
/// seed expands into exactly one test vector, so TSL equals the seed
/// count and no sequence reduction applies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassicalReseeding;

impl CompressionScheme for ClassicalReseeding {
    fn name(&self) -> &str {
        "classical-reseeding"
    }

    fn compress(&self, set: &TestSet, ctx: &HardwareCtx) -> Result<SchemeReport, SchemeError> {
        let table = ExprTable::build(ctx.lfsr(), ctx.shifter(), set.config(), 1);
        let encoding = WindowEncoder::new(set, &table)?.encode_with_threads(
            ctx.config().fill_seed,
            crate::builder::resolve_threads(ctx.config().threads),
        )?;
        let tsl = encoding.seeds.len() as u64;
        Ok(SchemeReport::new(
            self.name(),
            ctx.lfsr_size(),
            encoding.seeds.len(),
            encoding.tdv(),
            tsl,
            tsl,
        ))
    }
}

/// The `[11]`-style test-set-embedding baseline (Kaseridis et al., ETS
/// 2005): the same window-based reseeding, but the only sequence
/// reduction is truncating each window after the last vector the cover
/// relies on — no State Skip hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Baseline11;

impl CompressionScheme for Baseline11 {
    fn name(&self) -> &str {
        "baseline-11"
    }

    fn compress(&self, set: &TestSet, ctx: &HardwareCtx) -> Result<SchemeReport, SchemeError> {
        // same encode + embed stages as StateSkip; the reduction step
        // is truncation only
        let embedded = Encoded::from_ctx_ref(set, ctx)?.embed();
        let tsl = baseline11_tsl(embedded.embedding());
        let encoding = embedded.encoding();
        Ok(SchemeReport::new(
            self.name(),
            ctx.lfsr_size(),
            encoding.seeds.len(),
            encoding.tdv(),
            encoding.tsl_original() as u64,
            tsl,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Engine;
    use ss_testdata::{generate_test_set, CubeProfile};

    fn mini() -> (TestSet, Engine) {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let engine = Engine::builder()
            .window(24)
            .segment(4)
            .speedup(6)
            .build()
            .unwrap();
        (set, engine)
    }

    #[test]
    fn all_three_schemes_run_through_trait_objects() {
        let (set, engine) = mini();
        let schemes: Vec<Box<dyn CompressionScheme>> = vec![
            Box::new(StateSkip),
            Box::new(ClassicalReseeding),
            Box::new(Baseline11),
        ];
        let reports = engine.run_all(&schemes, &set).unwrap();
        assert_eq!(reports.len(), 3);
        for (scheme, report) in schemes.iter().zip(&reports) {
            assert_eq!(scheme.name(), report.scheme);
            assert!(report.seeds > 0);
            assert_eq!(report.tdv, report.seeds * report.lfsr_size);
            assert!(report.tsl <= report.tsl_original);
            assert!(!report.summary().is_empty());
        }
        // the paper's ordering: state skip beats truncation-only
        // embedding, which beats the raw windowed sequence
        let state_skip = &reports[0];
        let baseline = &reports[2];
        assert!(state_skip.tsl <= baseline.tsl);
        assert!(baseline.tsl <= baseline.tsl_original);
        // classical reseeding stores more bits but applies fewer vectors
        let classical = &reports[1];
        assert!(classical.tdv >= state_skip.tdv);
        assert_eq!(classical.tsl, classical.seeds as u64);
    }

    #[test]
    fn comparison_table_has_one_row_per_scheme() {
        let (set, engine) = mini();
        let schemes: Vec<Box<dyn CompressionScheme>> =
            vec![Box::new(StateSkip), Box::new(ClassicalReseeding)];
        let reports = engine.run_all(&schemes, &set).unwrap();
        let table = comparison_table(&reports);
        assert_eq!(table.row_count(), 2);
        let text = table.to_string();
        assert!(text.contains("state-skip"));
        assert!(text.contains("classical-reseeding"));
    }

    #[test]
    fn comparison_table_formats_report_fields() {
        let reports = vec![
            SchemeReport::new("state-skip", 24, 10, 240, 1000, 120),
            SchemeReport::new("classical-reseeding", 24, 40, 960, 40, 40),
        ];
        let table = comparison_table(&reports);
        assert_eq!(table.row_count(), 2);
        let text = table.to_string();
        let lines: Vec<&str> = text.lines().collect();
        // header + separator + one line per report
        assert_eq!(lines.len(), 4);
        for header in ["scheme", "n", "seeds", "TDV (bits)", "TSL", "impr"] {
            assert!(lines[0].contains(header), "missing header {header}");
        }
        // every column is rendered, improvement as a percentage
        assert!(lines[2].contains("state-skip"));
        assert!(lines[2].contains("240") && lines[2].contains("120"));
        assert!(lines[2].contains("88.0%"), "1000 -> 120 is 88.0% shorter");
        assert!(lines[3].contains("0.0%"), "no reduction formats as 0.0%");
        // aligned: all rows share the header's width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn run_scheme_matches_run_all() {
        let (set, engine) = mini();
        let single = engine.run_scheme(&StateSkip, &set).unwrap();
        let batch = engine
            .run_all(&[Box::new(StateSkip) as Box<dyn CompressionScheme>], &set)
            .unwrap();
        assert_eq!(single, batch[0]);
    }
}
