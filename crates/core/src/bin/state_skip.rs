//! `state-skip` — command-line driver for the State Skip compression
//! flow, built on the staged `Engine` API.
//!
//! ```text
//! state-skip stats     <test_set.txt>
//! state-skip run       <test_set.txt> [L] [S] [k] [--threads N]
//! state-skip run       --bench <f.bench> --cubes <f.cubes> [L] [S] [k] [--threads N]
//! state-skip compare   <test_set.txt> [L] [S] [k] [--threads N]
//! state-skip sweep     <test_set.txt> [L]
//! state-skip rtl       <test_set.txt> [k]
//! state-skip gen       <profile> <seed>             # emit a synthetic set
//! state-skip workloads                              # list the corpus
//! ```
//!
//! Test sets use the text format of `ss_testdata::TestSet`
//! (`chains <m> depth <r>` header + one `01X` cube per line); netlists
//! use the ISCAS'89 `.bench` format of `ss_circuit::parse_bench`. The
//! `--bench/--cubes` form runs the engine on a user-supplied circuit +
//! cube-set pair and closes the loop with fault simulation of the
//! decompressed sequences.

use std::process::ExitCode;

use ss_core::{
    comparison_table, emit_decompressor_rtl, improvement_percent, parse_workload,
    sequence_coverage, Baseline11, ClassicalReseeding, CompressionScheme, Engine, StateSkip, Table,
};
use ss_lfsr::SkipCircuit;
use ss_testdata::{generate_test_set, CubeProfile, TestSet, WorkloadRegistry};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  state-skip stats     <test_set.txt>
  state-skip run       <test_set.txt> [L=100] [S=5] [k=10] [--threads N]
  state-skip run       --bench <f.bench> --cubes <f.cubes> [L=100] [S=5] [k=10] [--threads N]
  state-skip compare   <test_set.txt> [L=100] [S=5] [k=10] [--threads N]
  state-skip sweep     <test_set.txt> [L=100]
  state-skip rtl       <test_set.txt> [k=10]
  state-skip gen       <s9234|s13207|s15850|s38417|s38584|mini> <seed>
  state-skip workloads

--threads N caps the engine's worker threads (default: all hardware
threads); results are bit-identical at every thread count.";

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = take_threads_flag(&mut args)?;
    let command = args.first().map(String::as_str).ok_or("missing command")?;
    match command {
        "stats" => stats(args.get(1).ok_or("missing test set path")?),
        "run" if args.iter().any(|a| a == "--bench" || a == "--cubes") => {
            run_files(&args[1..], threads)
        }
        "run" => cmd_run(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 100)?,
            parse_or(args.get(3), 5)?,
            parse_or(args.get(4), 10)? as u64,
            threads,
        ),
        "compare" => compare(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 100)?,
            parse_or(args.get(3), 5)?,
            parse_or(args.get(4), 10)? as u64,
            threads,
        ),
        "sweep" => sweep(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 100)?,
        ),
        "rtl" => rtl(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 10)? as u64,
        ),
        "gen" => gen(
            args.get(1).ok_or("missing profile name")?,
            parse_or(args.get(2), 1)? as u64,
        ),
        "workloads" => workloads(),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Extracts a `--threads N` flag from anywhere in the argument list.
fn take_threads_flag(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let Some(at) = args.iter().position(|a| a == "--threads") else {
        return Ok(None);
    };
    if at + 1 >= args.len() {
        return Err("--threads needs a count".into());
    }
    let n: usize = args[at + 1]
        .parse()
        .map_err(|_| format!("not a thread count: {:?}", args[at + 1]))?;
    if n == 0 {
        return Err("--threads must be >= 1".into());
    }
    args.drain(at..=at + 1);
    Ok(Some(n))
}

/// Splits `--bench <path> --cubes <path>` out of a flag/positional mix,
/// returning (bench, cubes, positionals).
fn split_flags(args: &[String]) -> Result<(String, String, Vec<&String>), String> {
    let mut bench = None;
    let mut cubes = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => bench = Some(it.next().ok_or("--bench needs a path")?.clone()),
            "--cubes" => cubes = Some(it.next().ok_or("--cubes needs a path")?.clone()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            _ => rest.push(arg),
        }
    }
    Ok((
        bench.ok_or("missing --bench <file>")?,
        cubes.ok_or("missing --cubes <file>")?,
        rest,
    ))
}

fn parse_or(arg: Option<&String>, default: usize) -> Result<usize, String> {
    match arg {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("not a number: {s:?}")),
    }
}

fn load(path: &str) -> Result<TestSet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    TestSet::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn stats(path: &str) -> Result<(), String> {
    let set = load(path)?;
    let s = set.stats();
    println!("geometry:        {}", set.config());
    println!("cubes:           {}", s.cube_count);
    println!("smax:            {}", s.smax);
    println!("total specified: {}", s.total_specified);
    println!("mean specified:  {:.2}", s.mean_specified);
    Ok(())
}

fn engine_for(
    window: usize,
    segment: usize,
    speedup: u64,
    threads: Option<usize>,
) -> Result<Engine, String> {
    let mut builder = Engine::builder()
        .window(window)
        .segment(segment)
        .speedup(speedup);
    if let Some(n) = threads {
        builder = builder.threads(n);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Drops intrinsically unencodable cubes with a note on stderr and
/// pins the LFSR size chosen for the *original* set, so filtering
/// cannot shrink `smax` and silently change the hardware.
fn encodable(engine: &Engine, set: &TestSet) -> Result<(Engine, TestSet), String> {
    let ctx = engine.synthesize(set).map_err(|e| e.to_string())?;
    let (encodable, dropped) = ctx.encodable_subset(set);
    if !dropped.is_empty() {
        eprintln!(
            "note: dropped {} intrinsically unencodable cube(s); raise the LFSR size to keep them",
            dropped.len()
        );
    }
    // copy the FULL config and pin only the LFSR size, so every other
    // knob (ps_taps, hw_seed, ...) carries over to the filtered run
    let mut config = *engine.config();
    config.lfsr_size = Some(ctx.lfsr_size());
    let pinned = Engine::from_config(config).map_err(|e| e.to_string())?;
    Ok((pinned, encodable))
}

fn cmd_run(
    path: &str,
    window: usize,
    segment: usize,
    speedup: u64,
    threads: Option<usize>,
) -> Result<(), String> {
    let set = load(path)?;
    let engine = engine_for(window, segment, speedup, threads)?;
    let (engine, set) = encodable(&engine, &set)?;
    let report = engine.run(&set).map_err(|e| e.to_string())?;
    println!("{}", report.summary());
    println!(
        "hardware: skip {:.0} GE, mode-select {:.0} GE, shared {:.0} GE",
        report.cost.skip_ge(),
        report.cost.mode_select_ge(),
        report.cost.shared_ge()
    );
    Ok(())
}

/// `run --bench <f> --cubes <f>`: ingest a circuit + cube-set pair,
/// run the full State Skip flow, and fault-simulate the decompressed
/// sequences against the circuit.
fn run_files(args: &[String], threads: Option<usize>) -> Result<(), String> {
    let (bench_path, cubes_path, rest) = split_flags(args)?;
    let window = parse_or(rest.first().copied(), 100)?;
    let segment = parse_or(rest.get(1).copied(), 5)?;
    let speedup = parse_or(rest.get(2).copied(), 10)? as u64;

    let bench_text =
        std::fs::read_to_string(&bench_path).map_err(|e| format!("{bench_path}: {e}"))?;
    let cubes_text =
        std::fs::read_to_string(&cubes_path).map_err(|e| format!("{cubes_path}: {e}"))?;
    let workload = parse_workload(&bench_text, &cubes_text).map_err(|e| e.to_string())?;
    let netlist = &workload.circuit.netlist;
    println!(
        "circuit:  {} inputs ({} PIs + {} scan cells), {} gates, {} outputs",
        netlist.input_count(),
        workload.circuit.pi_count,
        workload.circuit.dff_count,
        netlist.gate_count(),
        netlist.outputs().len()
    );
    let stats = workload.set.stats();
    println!(
        "cubes:    {} cubes on {}, smax {}, mean specified {:.1}",
        stats.cube_count,
        workload.set.config(),
        stats.smax,
        stats.mean_specified
    );

    let engine = engine_for(window, segment, speedup, threads)?;
    let (engine, set) = encodable(&engine, &workload.set)?;
    let report = engine.run(&set).map_err(|e| e.to_string())?;
    println!("{}", report.summary());
    let ctx = engine.synthesize(&set).map_err(|e| e.to_string())?;
    let cov = sequence_coverage(netlist, &ctx, &report).map_err(|e| e.to_string())?;
    println!(
        "coverage: {:.2}% of {} collapsed stuck-at faults under State Skip ({} applied vectors); {:.2}% for the full window sequence ({} vectors)",
        cov.applied_coverage * 100.0,
        cov.faults,
        cov.applied_vectors,
        cov.window_coverage * 100.0,
        cov.window_vectors
    );
    Ok(())
}

/// `workloads`: list the named corpus. Profile entries are described
/// from their profile metadata so the listing stays instant — no cube
/// set is materialised.
fn workloads() -> Result<(), String> {
    let mut table = Table::new(["name", "kind", "cubes", "cells", "smax", "description"]);
    for w in WorkloadRegistry::all() {
        let (kind, cubes, cells, smax) = match w.profile() {
            Some(p) => ("profile", p.cube_count, p.scan_config().cells(), p.smax),
            None => {
                let set = w.test_set();
                ("files", set.len(), set.config().cells(), set.smax())
            }
        };
        table.add_row([
            w.name.to_string(),
            kind.to_string(),
            cubes.to_string(),
            cells.to_string(),
            smax.to_string(),
            w.description.to_string(),
        ]);
    }
    println!("{table}");
    println!("file workloads live under crates/testdata/workloads/;");
    println!("run one with: state-skip run --bench <name>.bench --cubes <name>.cubes");
    Ok(())
}

fn compare(
    path: &str,
    window: usize,
    segment: usize,
    speedup: u64,
    threads: Option<usize>,
) -> Result<(), String> {
    let set = load(path)?;
    let engine = engine_for(window, segment, speedup, threads)?;
    let (engine, set) = encodable(&engine, &set)?;
    let schemes: Vec<Box<dyn CompressionScheme>> = vec![
        Box::new(StateSkip),
        Box::new(ClassicalReseeding),
        Box::new(Baseline11),
    ];
    let reports = engine.run_all(&schemes, &set).map_err(|e| e.to_string())?;
    println!("L={window} S={segment} k={speedup}, {} cubes", set.len());
    println!("{}", comparison_table(&reports));
    Ok(())
}

fn sweep(path: &str, window: usize) -> Result<(), String> {
    let set = load(path)?;
    let engine = engine_for(window, 5, 10, None)?;
    let (engine, set) = encodable(&engine, &set)?;
    // encode and embed once; re-plan per (S, k) through the staged
    // artifacts
    let embedded = engine.encode(&set).map_err(|e| e.to_string())?.embed();
    let seeds = embedded.encoding().seeds.len();
    let tdv = embedded.encoding().tdv();
    let tsl_original = embedded.encoding().tsl_original() as u64;
    let mut table = Table::new(["S", "k", "TSL", "improvement"]);
    for segment in [2usize, 5, 10, 20] {
        if segment > window {
            continue;
        }
        let segmented = embedded.clone().segment_with(segment);
        for k in [4u64, 8, 16, 24] {
            let tsl = segmented.tsl_with(k).vectors;
            table.add_row([
                segment.to_string(),
                k.to_string(),
                tsl.to_string(),
                format!("{:.1}%", improvement_percent(tsl_original, tsl)),
            ]);
        }
    }
    println!("window L={window}: {seeds} seeds, TDV {tdv} bits, orig TSL {tsl_original}");
    println!("{table}");
    Ok(())
}

fn rtl(path: &str, speedup: u64) -> Result<(), String> {
    let set = load(path)?;
    let engine = engine_for(1, 1, speedup, None)?;
    let ctx = engine.synthesize(&set).map_err(|e| e.to_string())?;
    let skip = SkipCircuit::new(ctx.lfsr(), speedup).map_err(|e| e.to_string())?;
    print!(
        "{}",
        emit_decompressor_rtl(ctx.lfsr(), &skip, ctx.shifter())
    );
    Ok(())
}

fn gen(profile_name: &str, seed: u64) -> Result<(), String> {
    let profile = match profile_name {
        "s9234" => CubeProfile::s9234(),
        "s13207" => CubeProfile::s13207(),
        "s15850" => CubeProfile::s15850(),
        "s38417" => CubeProfile::s38417(),
        "s38584" => CubeProfile::s38584(),
        "mini" => CubeProfile::mini(),
        other => return Err(format!("unknown profile {other:?}")),
    };
    print!("{}", generate_test_set(&profile, seed).to_text());
    Ok(())
}
