//! `state-skip` — command-line driver for the State Skip compression
//! flow.
//!
//! ```text
//! state-skip stats   <test_set.txt>
//! state-skip run     <test_set.txt> [L] [S] [k]
//! state-skip sweep   <test_set.txt> [L]
//! state-skip rtl     <test_set.txt> [k]
//! state-skip gen     <profile> <seed>          # emit a synthetic set
//! ```
//!
//! Test sets use the text format of `ss_testdata::TestSet`
//! (`chains <m> depth <r>` header + one `01X` cube per line).

use std::process::ExitCode;

use ss_core::{
    emit_decompressor_rtl, improvement_percent, Pipeline, PipelineConfig, SegmentPlan, Table,
};
use ss_lfsr::SkipCircuit;
use ss_testdata::{generate_test_set, CubeProfile, TestSet};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  state-skip stats <test_set.txt>
  state-skip run   <test_set.txt> [L=100] [S=5] [k=10]
  state-skip sweep <test_set.txt> [L=100]
  state-skip rtl   <test_set.txt> [k=10]
  state-skip gen   <s9234|s13207|s15850|s38417|s38584|mini> <seed>";

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).ok_or("missing command")?;
    match command {
        "stats" => stats(args.get(1).ok_or("missing test set path")?),
        "run" => cmd_run(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 100)?,
            parse_or(args.get(3), 5)?,
            parse_or(args.get(4), 10)? as u64,
        ),
        "sweep" => sweep(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 100)?,
        ),
        "rtl" => rtl(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 10)? as u64,
        ),
        "gen" => gen(
            args.get(1).ok_or("missing profile name")?,
            parse_or(args.get(2), 1)? as u64,
        ),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn parse_or(arg: Option<&String>, default: usize) -> Result<usize, String> {
    match arg {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("not a number: {s:?}")),
    }
}

fn load(path: &str) -> Result<TestSet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    TestSet::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn stats(path: &str) -> Result<(), String> {
    let set = load(path)?;
    let s = set.stats();
    println!("geometry:        {}", set.config());
    println!("cubes:           {}", s.cube_count);
    println!("smax:            {}", s.smax);
    println!("total specified: {}", s.total_specified);
    println!("mean specified:  {:.2}", s.mean_specified);
    Ok(())
}

fn pipeline_for(set: &TestSet, window: usize, segment: usize, speedup: u64) -> Result<(Pipeline<'_>, PipelineConfig), String> {
    let config = PipelineConfig {
        window,
        segment,
        speedup,
        ..PipelineConfig::default()
    };
    Pipeline::new(set, config)
        .map(|p| (p, config))
        .map_err(|e| e.to_string())
}

fn cmd_run(path: &str, window: usize, segment: usize, speedup: u64) -> Result<(), String> {
    let set = load(path)?;
    let (probe, config) = pipeline_for(&set, window, segment, speedup)?;
    let (encodable, dropped) = probe.encodable_subset();
    if !dropped.is_empty() {
        eprintln!(
            "note: dropped {} intrinsically unencodable cube(s); raise the LFSR size to keep them",
            dropped.len()
        );
    }
    let pipeline = Pipeline::new(&encodable, config).map_err(|e| e.to_string())?;
    let report = pipeline.run().map_err(|e| e.to_string())?;
    println!("{}", report.summary());
    println!(
        "hardware: skip {:.0} GE, mode-select {:.0} GE, shared {:.0} GE",
        report.cost.skip_ge(),
        report.cost.mode_select_ge(),
        report.cost.shared_ge()
    );
    Ok(())
}

fn sweep(path: &str, window: usize) -> Result<(), String> {
    let set = load(path)?;
    let (probe, config) = pipeline_for(&set, window, 5, 10)?;
    let (encodable, _) = probe.encodable_subset();
    let pipeline = Pipeline::new(&encodable, config).map_err(|e| e.to_string())?;
    let report = pipeline.run().map_err(|e| e.to_string())?;
    let r = set.config().depth();
    let mut table = Table::new(["S", "k", "TSL", "improvement"]);
    for segment in [2usize, 5, 10, 20] {
        if segment > window {
            continue;
        }
        let plan = SegmentPlan::build(&report.embedding, segment);
        for k in [4u64, 8, 16, 24] {
            let tsl = plan.tsl(k, r).vectors;
            table.add_row([
                segment.to_string(),
                k.to_string(),
                tsl.to_string(),
                format!("{:.1}%", improvement_percent(report.tsl_original, tsl)),
            ]);
        }
    }
    println!("window L={window}: {} seeds, TDV {} bits, orig TSL {}", report.seeds, report.tdv, report.tsl_original);
    println!("{table}");
    Ok(())
}

fn rtl(path: &str, speedup: u64) -> Result<(), String> {
    let set = load(path)?;
    let (pipeline, _) = pipeline_for(&set, 1, 1, speedup)?;
    let skip = SkipCircuit::new(pipeline.lfsr(), speedup).map_err(|e| e.to_string())?;
    print!(
        "{}",
        emit_decompressor_rtl(pipeline.lfsr(), &skip, pipeline.shifter())
    );
    Ok(())
}

fn gen(profile_name: &str, seed: u64) -> Result<(), String> {
    let profile = match profile_name {
        "s9234" => CubeProfile::s9234(),
        "s13207" => CubeProfile::s13207(),
        "s15850" => CubeProfile::s15850(),
        "s38417" => CubeProfile::s38417(),
        "s38584" => CubeProfile::s38584(),
        "mini" => CubeProfile::mini(),
        other => return Err(format!("unknown profile {other:?}")),
    };
    print!("{}", generate_test_set(&profile, seed).to_text());
    Ok(())
}
