//! Cycle-accurate simulation of the decompression architecture
//! (Fig. 3 of the paper).
//!
//! The simulator drives a [`StateSkipLfsr`] through the counter
//! discipline of the architecture: for every seed (walked group by
//! group), segments are generated in Normal mode when Mode Select says
//! *useful* and traversed with State Skip jumps otherwise; the seed
//! ends right after its group's quota of useful segments. Every scan
//! capture is recorded, so a run *proves* that the shortened sequence
//! still applies every test cube.

use ss_gf2::BitVec;
use ss_lfsr::{Lfsr, PhaseShifter, StateSkipLfsr};
use ss_testdata::{ScanConfig, TestSet};

use crate::encoder::EncodingResult;
use crate::modeselect::ModeSelect;
use crate::segments::SegmentPlan;

/// The decompressor: State Skip LFSR + phase shifter + counters +
/// Mode Select.
///
/// # Example
///
/// Constructed from pipeline products; see the `end_to_end`
/// integration test for the full proof flow.
#[derive(Debug)]
pub struct Decompressor {
    skip_lfsr: StateSkipLfsr,
    shifter: PhaseShifter,
    scan: ScanConfig,
    mode_select: ModeSelect,
}

/// Everything a decompressor run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompressorTrace {
    /// Every vector applied to the CUT, in order (useful and garbage).
    pub vectors: Vec<BitVec>,
    /// Vectors belonging to useful segments (exact window content).
    pub useful_vectors: Vec<BitVec>,
    /// Total clocks spent.
    pub clocks: u64,
    /// Garbage vectors applied during State Skip traversal.
    pub garbage_vectors: u64,
}

impl DecompressorTrace {
    /// Total vectors applied — the TSL the hardware realises.
    pub fn tsl(&self) -> u64 {
        self.vectors.len() as u64
    }

    /// `true` when every cube of `set` matches at least one applied
    /// vector — the end-to-end correctness property of the scheme.
    pub fn covers(&self, set: &TestSet) -> bool {
        set.iter()
            .all(|cube| self.vectors.iter().any(|v| cube.matches(v)))
    }
}

impl Decompressor {
    /// Assembles the architecture.
    ///
    /// # Panics
    ///
    /// Panics if the shifter geometry does not match the LFSR or scan
    /// configuration.
    pub fn new(
        lfsr: Lfsr,
        speedup: u64,
        shifter: PhaseShifter,
        scan: ScanConfig,
        mode_select: ModeSelect,
    ) -> Self {
        assert_eq!(shifter.input_count(), lfsr.size(), "shifter/LFSR mismatch");
        assert_eq!(
            shifter.output_count(),
            scan.chains(),
            "shifter/scan mismatch"
        );
        let skip_lfsr = StateSkipLfsr::new(lfsr, speedup).expect("speedup >= 1");
        Decompressor {
            skip_lfsr,
            shifter,
            scan,
            mode_select,
        }
    }

    /// Runs the whole test: every seed in group order, every segment up
    /// to the seed's useful quota.
    pub fn run(&mut self, encoding: &EncodingResult, plan: &SegmentPlan) -> DecompressorTrace {
        let r = self.scan.depth() as u64;
        let mut trace = DecompressorTrace {
            vectors: Vec::new(),
            useful_vectors: Vec::new(),
            clocks: 0,
            garbage_vectors: 0,
        };

        for (g, (useful_quota, seeds)) in plan.groups().iter().enumerate() {
            for (s, &seed_idx) in seeds.iter().enumerate() {
                self.skip_lfsr.load(&encoding.seeds[seed_idx].seed);
                let mut remaining = *useful_quota;
                let mut pending_gap = 0u64; // states queued for skip traversal
                let mut segment = 0usize;
                while remaining > 0 {
                    let len = plan.segment_len(segment) as u64;
                    if self.mode_select.mode(g, s, segment) {
                        // flush any queued useless gap with skip clocks
                        if pending_gap > 0 {
                            let clocks = self.traverse_gap(pending_gap, r, &mut trace);
                            trace.clocks += clocks;
                            pending_gap = 0;
                        }
                        // generate the useful segment in Normal mode
                        for _ in 0..len {
                            let vector = self.load_vector();
                            trace.clocks += r;
                            trace.useful_vectors.push(vector.clone());
                            trace.vectors.push(vector);
                        }
                        remaining -= 1;
                    } else {
                        pending_gap += len * r;
                    }
                    segment += 1;
                }
            }
        }
        trace
    }

    /// Shifts one full vector into the chains (Normal mode), returning
    /// the captured vector.
    fn load_vector(&mut self) -> BitVec {
        let r = self.scan.depth();
        let mut vector = BitVec::zeros(self.scan.cells());
        for t in 0..r {
            let outs = self.shifter.outputs(self.skip_lfsr.state());
            let pos = self.scan.position_loaded_at(t);
            for c in 0..self.scan.chains() {
                if outs.get(c) {
                    vector.set(self.scan.cell_index(c, pos), true);
                }
            }
            self.skip_lfsr.step();
        }
        vector
    }

    /// Traverses `gap` states in State Skip mode, capturing the garbage
    /// vectors that shift through the chains meanwhile. Returns the
    /// clocks spent.
    fn traverse_gap(&mut self, gap: u64, r: u64, trace: &mut DecompressorTrace) -> u64 {
        let k = self.skip_lfsr.k();
        let skip_clocks = gap / k;
        let total = skip_clocks + gap % k; // skips first, normal remainder
        let mut current = BitVec::zeros(self.scan.cells());
        let mut bit_count = 0u64;
        for clock in 0..total {
            // sample, then clock — the same order as Normal-mode loads
            let outs = self.shifter.outputs(self.skip_lfsr.state());
            let pos = self.scan.position_loaded_at(bit_count as usize);
            for c in 0..self.scan.chains() {
                current.set(self.scan.cell_index(c, pos), outs.get(c));
            }
            bit_count += 1;
            if bit_count == r {
                let full = std::mem::replace(&mut current, BitVec::zeros(self.scan.cells()));
                trace.vectors.push(full);
                trace.garbage_vectors += 1;
                bit_count = 0;
            }
            if clock < skip_clocks {
                self.skip_lfsr.jump();
            } else {
                self.skip_lfsr.step();
            }
        }
        if bit_count > 0 {
            // partial flush: the controller captures once more before
            // switching back to Normal mode
            trace.vectors.push(current);
            trace.garbage_vectors += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::EmbeddingMap;
    use crate::encoder::WindowEncoder;
    use crate::expr_table::ExprTable;
    use crate::pipeline::{try_expand_seed, Pipeline, PipelineConfig};
    use ss_testdata::{generate_test_set, CubeProfile};

    fn setup() -> (ss_testdata::TestSet, PipelineConfig) {
        let set = generate_test_set(&CubeProfile::mini(), 4);
        let config = PipelineConfig {
            window: 20,
            segment: 4,
            speedup: 7,
            ..PipelineConfig::default()
        };
        (set, config)
    }

    #[test]
    fn trace_matches_tsl_accounting_exactly() {
        let (set, config) = setup();
        let pipeline = Pipeline::new(&set, config).unwrap();
        let report = pipeline.run().unwrap();
        let mut dec = Decompressor::new(
            pipeline.lfsr().clone(),
            config.speedup,
            pipeline.shifter().clone(),
            set.config(),
            report.mode_select.clone(),
        );
        let trace = dec.run(&report.encoding, &report.plan);
        assert_eq!(trace.tsl(), report.tsl_proposed, "vector counts must agree");
        assert_eq!(
            trace.clocks, report.tsl_report.total_clocks,
            "clock counts must agree"
        );
        assert_eq!(
            trace.useful_vectors.len() as u64,
            report.tsl_report.useful_vectors
        );
    }

    #[test]
    fn every_cube_is_applied_by_the_shortened_sequence() {
        let (set, config) = setup();
        let pipeline = Pipeline::new(&set, config).unwrap();
        let report = pipeline.run().unwrap();
        let mut dec = Decompressor::new(
            pipeline.lfsr().clone(),
            config.speedup,
            pipeline.shifter().clone(),
            set.config(),
            report.mode_select.clone(),
        );
        let trace = dec.run(&report.encoding, &report.plan);
        assert!(
            trace.covers(&set),
            "shortened sequence must apply every cube"
        );
    }

    #[test]
    fn useful_vectors_equal_window_content() {
        let (set, config) = setup();
        let pipeline = Pipeline::new(&set, config).unwrap();
        let report = pipeline.run().unwrap();
        let mut dec = Decompressor::new(
            pipeline.lfsr().clone(),
            config.speedup,
            pipeline.shifter().clone(),
            set.config(),
            report.mode_select.clone(),
        );
        let trace = dec.run(&report.encoding, &report.plan);

        // reconstruct the expected useful vectors from the plan
        let mut expected = Vec::new();
        for (_, seeds) in report.plan.groups() {
            for &seed_idx in seeds {
                let window = try_expand_seed(
                    pipeline.lfsr(),
                    pipeline.shifter(),
                    set.config(),
                    &report.encoding.seeds[seed_idx].seed,
                    config.window,
                )
                .unwrap();
                for &seg in report.plan.useful_segments(seed_idx) {
                    let start = seg * config.segment;
                    let len = report.plan.segment_len(seg);
                    expected.extend(window[start..start + len].iter().cloned());
                }
            }
        }
        assert_eq!(
            trace.useful_vectors, expected,
            "skip traversal must land exactly"
        );
    }

    #[test]
    fn k_one_decompressor_equals_truncated_windows() {
        let (set, mut config) = setup();
        config.speedup = 1;
        let pipeline = Pipeline::new(&set, config).unwrap();
        let report = pipeline.run().unwrap();
        let mut dec = Decompressor::new(
            pipeline.lfsr().clone(),
            1,
            pipeline.shifter().clone(),
            set.config(),
            report.mode_select.clone(),
        );
        let trace = dec.run(&report.encoding, &report.plan);
        assert_eq!(trace.tsl(), report.tsl_truncated);
        assert!(trace.covers(&set));
    }

    #[test]
    fn encoder_products_feed_decompressor_without_pipeline() {
        // exercise the lower-level assembly path
        let (set, config) = setup();
        let pipeline = Pipeline::new(&set, config).unwrap();
        let table = ExprTable::build(
            pipeline.lfsr(),
            pipeline.shifter(),
            set.config(),
            config.window,
        );
        let encoding = WindowEncoder::new(&set, &table)
            .unwrap()
            .encode(config.fill_seed)
            .unwrap();
        let map = EmbeddingMap::build(&set, &encoding, pipeline.lfsr(), pipeline.shifter());
        let plan = SegmentPlan::build(&map, config.segment);
        let ms = ModeSelect::from_plan(&plan);
        let mut dec = Decompressor::new(
            pipeline.lfsr().clone(),
            config.speedup,
            pipeline.shifter().clone(),
            set.config(),
            ms,
        );
        let trace = dec.run(&encoding, &plan);
        assert!(trace.covers(&set));
    }
}
