//! Classical LFSR reseeding (the paper's `L = 1` baseline).
//!
//! Each seed expands into exactly one test vector. For the fair
//! comparison of the paper's Table 1, the same multi-cube encoding
//! algorithm is used: a seed still encodes every *compatible* cube that
//! fits into one vector's worth of linear equations.
//!
//! The scheme is also available polymorphically as
//! [`ClassicalReseeding`](crate::ClassicalReseeding), runnable through
//! [`Engine::run_all`](crate::Engine::run_all) alongside the other
//! [`CompressionScheme`](crate::CompressionScheme)s.

use ss_testdata::TestSet;

use crate::encoder::{EncodingResult, WindowEncoder};
use crate::expr_table::ExprTable;
use crate::pipeline::{Pipeline, PipelineConfig, PipelineError};

/// Result of the classical (`L = 1`) reseeding baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalResult {
    /// The underlying encoding (window length 1).
    pub encoding: EncodingResult,
}

impl ClassicalResult {
    /// Test data volume in bits.
    pub fn tdv(&self) -> usize {
        self.encoding.tdv()
    }

    /// Test sequence length — one vector per seed.
    pub fn tsl(&self) -> usize {
        self.encoding.seeds.len()
    }
}

/// Runs classical reseeding on `set` with the same hardware-synthesis
/// conventions as [`Pipeline`].
///
/// # Errors
///
/// Propagates [`PipelineError`] from hardware synthesis or encoding.
pub fn classical_reseeding(
    set: &TestSet,
    lfsr_size: Option<usize>,
    hw_seed: u64,
    fill_seed: u64,
) -> Result<ClassicalResult, PipelineError> {
    let config = PipelineConfig {
        window: 1,
        segment: 1,
        speedup: 1,
        lfsr_size,
        hw_seed,
        fill_seed,
        ..PipelineConfig::default()
    };
    let pipeline = Pipeline::new(set, config)?;
    let table = ExprTable::build(pipeline.lfsr(), pipeline.shifter(), set.config(), 1);
    let encoding = WindowEncoder::new(set, &table)?.encode(fill_seed)?;
    Ok(ClassicalResult { encoding })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_testdata::{generate_test_set, CubeProfile};

    #[test]
    fn classical_tsl_equals_seed_count() {
        let set = generate_test_set(&CubeProfile::mini(), 8);
        let result = classical_reseeding(&set, None, PipelineConfig::default().hw_seed, 1).unwrap();
        assert_eq!(result.tsl(), result.encoding.seeds.len());
        assert_eq!(result.tdv(), result.encoding.tdv());
        assert!(result.tsl() > 0);
    }

    #[test]
    fn window_encoding_compresses_better_than_classical() {
        // the motivation experiment of the paper's Table 1: larger L
        // yields fewer seeds (lower TDV) at the price of longer TSL
        let set = generate_test_set(&CubeProfile::mini(), 8);
        let classical =
            classical_reseeding(&set, None, PipelineConfig::default().hw_seed, 1).unwrap();
        let windowed = Pipeline::new(
            &set,
            PipelineConfig {
                window: 30,
                segment: 5,
                speedup: 6,
                ..PipelineConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            windowed.tdv <= classical.tdv(),
            "windowed TDV {} must not exceed classical {}",
            windowed.tdv,
            classical.tdv()
        );
        assert!(
            windowed.tsl_original as usize >= classical.tsl(),
            "windowed raw TSL must exceed classical"
        );
    }
}
