//! The Mode Select unit (Section 3.3).
//!
//! A combinational function of the decoded Group, Seed and Segment
//! counter outputs that raises `Mode = 1` (Normal) exactly for the
//! useful segments. Two structural facts keep it small:
//!
//! * the first segment of every seed is always useful, so segment 0
//!   needs no decoding at all;
//! * grouping seeds by useful-segment count means the *count* logic
//!   lives in the Useful Segment Counter, and Mode Select only stores
//!   which segments are useful.

use std::collections::HashSet;

use ss_lfsr::GateCount;

use crate::segments::SegmentPlan;

/// Model of the Mode Select combinational unit: the set of
/// `(group, seed-in-group, segment)` triples (segment > 0) that must
/// decode to Normal mode.
///
/// # Example
///
/// Built from a plan by [`ModeSelect::from_plan`]; queried by the
/// [`Decompressor`](crate::Decompressor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeSelect {
    /// Product terms: (group, seed-in-group, segment), segment >= 1.
    terms: HashSet<(usize, usize, usize)>,
}

impl ModeSelect {
    /// Derives the unit from a segment plan.
    pub fn from_plan(plan: &SegmentPlan) -> Self {
        let mut terms = HashSet::new();
        for (g, (_, seeds)) in plan.groups().iter().enumerate() {
            for (s, &seed) in seeds.iter().enumerate() {
                for &seg in plan.useful_segments(seed) {
                    if seg > 0 {
                        terms.insert((g, s, seg));
                    }
                }
            }
        }
        ModeSelect { terms }
    }

    /// The Mode signal for the given counter state: `true` = Normal
    /// (useful segment), `false` = State Skip.
    pub fn mode(&self, group: usize, seed_in_group: usize, segment: usize) -> bool {
        segment == 0 || self.terms.contains(&(group, seed_in_group, segment))
    }

    /// Number of product terms (useful segments beyond each seed's
    /// first).
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Gate inventory: with decoded counter outputs each term is an
    /// AND of three lines (two 2-input ANDs) and the terms feed an OR
    /// tree (`terms - 1` 2-input ORs, costed as AND-class gates).
    pub fn gate_count(&self) -> GateCount {
        let t = self.terms.len();
        GateCount {
            and2: 2 * t + t.saturating_sub(1),
            ..GateCount::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::EmbeddingMap;
    use ss_gf2::BitVec;
    use ss_testdata::{ScanConfig, TestCube, TestSet};

    fn plan_with_two_seeds() -> SegmentPlan {
        let mut set = TestSet::new(ScanConfig::new(1, 2).unwrap());
        set.push("11".parse::<TestCube>().unwrap()).unwrap();
        set.push("00".parse::<TestCube>().unwrap()).unwrap();
        set.push("01".parse::<TestCube>().unwrap()).unwrap();
        let z = |bits: [u8; 2]| BitVec::from_bits(bits.iter().map(|&b| b == 1));
        let windows = vec![
            vec![z([1, 1]), z([1, 0]), z([0, 0]), z([1, 0])],
            vec![z([0, 1]), z([1, 0]), z([1, 0]), z([1, 0])],
        ];
        let map = EmbeddingMap::from_windows(&set, &windows);
        SegmentPlan::build(&map, 2)
    }

    #[test]
    fn segment_zero_is_always_normal() {
        let plan = plan_with_two_seeds();
        let ms = ModeSelect::from_plan(&plan);
        for g in 0..4 {
            for s in 0..4 {
                assert!(ms.mode(g, s, 0), "segment 0 must be Normal");
            }
        }
    }

    #[test]
    fn terms_match_plan() {
        let plan = plan_with_two_seeds();
        let ms = ModeSelect::from_plan(&plan);
        // walk the plan's groups and check consistency
        for (g, (_, seeds)) in plan.groups().iter().enumerate() {
            for (s, &seed) in seeds.iter().enumerate() {
                for seg in 0..plan.segments_per_window() {
                    let useful = plan.useful_segments(seed).contains(&seg);
                    if seg == 0 {
                        assert!(ms.mode(g, s, seg));
                    } else {
                        assert_eq!(ms.mode(g, s, seg), useful, "g{g} s{s} seg{seg}");
                    }
                }
            }
        }
        // term count = useful segments beyond segment 0
        let expected: usize = (0..plan.seed_count())
            .map(|i| plan.useful_segments(i).iter().filter(|&&s| s > 0).count())
            .sum();
        assert_eq!(ms.term_count(), expected);
    }

    #[test]
    fn gate_count_scales_with_terms() {
        let plan = plan_with_two_seeds();
        let ms = ModeSelect::from_plan(&plan);
        let gc = ms.gate_count();
        let t = ms.term_count();
        assert_eq!(gc.and2, 2 * t + t.saturating_sub(1));
        assert_eq!(gc.dff, 0, "mode select is combinational");
    }
}
