//! Window-based multi-cube seed encoding (Section 2 of the paper).
//!
//! Each seed is expanded on-chip into a window of `L` pseudorandom
//! vectors, so a cube can be encoded at any of `L` window positions —
//! `L` candidate linear systems instead of one. The greedy algorithm
//! reproduced here (the paper attributes it to its ref. [11]) packs
//! cubes into a seed until no remaining cube is solvable anywhere in
//! the window:
//!
//! 1. start the seed with the unencoded cube carrying the most
//!    specified bits, placed at window position 0;
//! 2. repeatedly, among the solvable (cube, position) systems for the
//!    cubes with the most specified bits, pick the system that
//!    (a) replaces the fewest seed variables (adds the least rank),
//!    (b) belongs to the cube encodable at the fewest positions, and
//!    (c) sits nearest the start of the window;
//! 3. when nothing is solvable, draw the free variables pseudorandomly
//!    and emit the seed; repeat with the remaining cubes.
//!
//! Conflicts are monotone in the growing basis, so each seed keeps a
//! per-cube cache of still-viable positions that only ever shrinks.
//!
//! # The incremental hot path
//!
//! [`WindowEncoder::encode`] keeps the greedy decisions of the search
//! above but replaces its probing engine. Whether a candidate
//! `(cube, position)` system is solvable — and how much rank it would
//! add — is a mathematical invariant of the equation sets involved, so
//! any probing engine that computes those two facts yields exactly the
//! same placements, seed for seed and bit for bit. The overhauled
//! engine computes them **incrementally**, in the basis's free
//! subspace:
//!
//! * **Free-space projection.** After the seed's first commit the
//!   solver's solution set is captured as an affine space
//!   `x0 + span(N)` ([`IncrementalSolver::affine_space`]) of dimension
//!   `f = n - rank` — tiny, because the first (largest) cube consumed
//!   most of the rank. Probing happens entirely in that `f`-bit
//!   coordinate frame instead of the `n`-bit ambient space.
//! * **A streamed projected expression table.** Expression-table row
//!   `t+1` is row `t` advanced by the LFSR transition matrix
//!   ([`ExprTable::transition`]), so the whole table's projection into
//!   the frame is *streamed* once per seed — `O(n)` words per cycle —
//!   rather than projected row by row. One probed equation then costs
//!   one table lookup.
//! * **Residue caching with a high-water mark.** Each viable
//!   `(cube, position)` candidate caches its locally-eliminated
//!   projected system. Later rounds do not re-eliminate it: committed
//!   rows accumulate in an append-only log, and a stale residue is
//!   *resumed* by folding in only the log suffix past its high-water
//!   mark — sound because the basis (and hence the log) only ever
//!   grows, and conflicts are monotone. In the smallest spaces
//!   (`f <= 10`) the residue degenerates to a bitmask of the `2^f`
//!   candidate seeds that satisfy the system, probing one equation is
//!   a word-AND against the row's satisfying-seed truth table, and
//!   resuming a residue is one intersection with the global constraint
//!   mask.
//! * **Parallel candidate probing.** Probing is read-only against the
//!   shared per-seed engine, so first-visit candidates are initialised
//!   across a [`std::thread::scope`] worker pool, in level batches
//!   sized to the thread count (deeper levels are probed
//!   speculatively — their caches would be needed later in the seed
//!   anyway, and probe outcomes are invariants, so speculation can
//!   never change the result). The winning placement is the minimum
//!   of the strict total order `(rank, count, position, cube)` within
//!   the shallowest level that has one, making the result
//!   **bit-identical at every thread count**.
//!
//! The pre-overhaul search survives as
//! [`WindowEncoder::encode_reference`]; property tests and the
//! `encode_scaling` bench pin the cached and parallel paths to it,
//! placement for placement and seed bit for seed bit.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic;
use std::thread;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ss_gf2::{words, AffineSpace, BitVec, IncrementalSolver, SolveOutcome};
use ss_testdata::TestSet;

use crate::expr_table::ExprTable;

/// One intentional cube placement inside a seed's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the cube in the source [`TestSet`].
    pub cube: usize,
    /// Window position (vector index in `0..L`) the cube was encoded at.
    pub position: usize,
}

/// A computed seed and the cubes deliberately encoded in its window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSeed {
    /// The seed value (LFSR initial state).
    pub seed: BitVec,
    /// Intentional placements, in encoding order (the first is always
    /// at window position 0).
    pub placements: Vec<Placement>,
}

/// Result of encoding a whole test set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodingResult {
    /// The seeds, in application order.
    pub seeds: Vec<EncodedSeed>,
    /// Window length `L`.
    pub window: usize,
    /// LFSR size `n` (bits per seed).
    pub lfsr_size: usize,
    /// Number of cubes that were encoded (== the test set size on
    /// success).
    pub encoded_cubes: usize,
}

impl EncodingResult {
    /// Test data volume in bits: `seeds * n` (what the ATE stores).
    pub fn tdv(&self) -> usize {
        self.seeds.len() * self.lfsr_size
    }

    /// Test sequence length of the *plain* window-based scheme:
    /// every seed expands to the full window (`seeds * L` vectors).
    /// This is the "Orig." column of the paper's Tables 1 and 2.
    pub fn tsl_original(&self) -> usize {
        self.seeds.len() * self.window
    }
}

/// Error from [`WindowEncoder::encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// A cube could not be encoded alone at any window position — the
    /// LFSR is too small for the test set (`n < smax`, or pathological
    /// linear dependences).
    CubeUnencodable {
        /// Index of the offending cube.
        cube: usize,
        /// Its specified-bit count.
        specified: usize,
        /// The LFSR size that proved insufficient.
        lfsr_size: usize,
    },
    /// The expression table's scan geometry differs from the test
    /// set's.
    GeometryMismatch,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::CubeUnencodable {
                cube,
                specified,
                lfsr_size,
            } => write!(
                f,
                "cube {cube} ({specified} specified bits) is unencodable with a {lfsr_size}-bit LFSR"
            ),
            EncodeError::GeometryMismatch => {
                write!(f, "expression table scan geometry differs from the test set")
            }
        }
    }
}

impl Error for EncodeError {}

/// Candidate key in the paper's selection order:
/// `(added rank, viable positions, position, cube)`.
type Key = (usize, usize, usize, usize);

/// One parallel probing work item: `(batch index, cube, its cache)`.
type WorkItem<'a> = (usize, usize, &'a mut CubeCache);

/// Serial levels before a parallel descent sweep is considered.
const DESCENT_LEVELS: usize = 4;

/// Estimated first-visit equation volume that justifies a worker-pool
/// dispatch.
const PAR_EQS: usize = 100_000;

/// The cached residue of one candidate `(cube, position)` system, in
/// the representation of the seed's probing tier:
///
/// * truth-table tier — `rows` is the bitmask of candidate seeds that
///   satisfy the system (`rhs` unused);
/// * fixed-frame tier — `rows`/`rhs` is the Gauss-Jordan eliminated
///   system *including* the committed-row log up to `watermark`
///   (one `u64` per row);
/// * general tier — `rows`/`rhs` is the eliminated projected system
///   in multi-word coordinates.
#[derive(Debug, Default)]
struct PosResidue {
    position: usize,
    /// Committed-log rows already folded in (fixed-frame tier).
    watermark: usize,
    rows: Vec<u64>,
    /// Reduced right-hand side per row (unused by the truth-table
    /// tier).
    rhs: Vec<bool>,
}

/// Per-cube probing state for the current seed: the still-viable
/// positions (monotonically shrinking, like the reference search's
/// `viable` map) with their cached residues.
#[derive(Debug, Default)]
struct CubeCache {
    init: bool,
    entries: Vec<PosResidue>,
    /// Retired entries whose buffers are reused by later seeds — each
    /// cube is probed by one worker at a time, so the pool never
    /// contends across threads (and steady-state probing never hits
    /// the allocator).
    spare: Vec<PosResidue>,
}

impl CubeCache {
    fn reset(&mut self) {
        self.init = false;
        self.spare.append(&mut self.entries);
    }

    fn take_entry(&mut self) -> PosResidue {
        self.spare.pop().unwrap_or_default()
    }

    /// `retain_mut` that recycles dropped entries into the pool
    /// (entry order is irrelevant: selection takes minima).
    fn prune(&mut self, mut keep: impl FnMut(&mut PosResidue) -> bool) {
        let mut i = 0;
        while i < self.entries.len() {
            if keep(&mut self.entries[i]) {
                i += 1;
            } else {
                let entry = self.entries.swap_remove(i);
                self.spare.push(entry);
            }
        }
    }
}

/// Reusable per-worker buffers so steady-state probing allocates
/// almost nothing.
#[derive(Debug, Default)]
struct ProbeScratch {
    /// Projection / mask target row (general + truth-table tiers).
    tmp: Vec<u64>,
    /// Elimination target rows (general tier).
    rows: Vec<u64>,
    /// Right-hand sides matching `rows`.
    rhs: Vec<bool>,
    /// Pivot of each row in `rows`.
    pivots: Vec<usize>,
}

/// Outcome of folding one row into a local residue elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocalOutcome {
    Added,
    Redundant,
    Conflict,
}

/// Reduces the `width`-word row `tmp`/`e` against the eliminated rows
/// accumulated in `rows`/`rhs`/`pivots` and appends it unless it
/// vanished. The row is built in place at the tail of `rows` — no
/// temporary buffer. (General-width path; the one-word tiers use
/// [`FastElim`].)
fn fold_row(
    tmp: &[u64],
    e: bool,
    width: usize,
    rows: &mut Vec<u64>,
    rhs: &mut Vec<bool>,
    pivots: &mut Vec<usize>,
) -> LocalOutcome {
    let base = rows.len();
    rows.extend_from_slice(tmp);
    let (done, fresh) = rows.split_at_mut(base);
    let row = &mut fresh[..width];
    let mut r = e;
    for (j, &p) in pivots.iter().enumerate() {
        if words::get_bit(row, p) {
            words::xor_in(row, &done[j * width..(j + 1) * width]);
            r ^= rhs[j];
        }
    }
    match words::first_one(row) {
        None => {
            rows.truncate(base);
            if r {
                LocalOutcome::Conflict
            } else {
                LocalOutcome::Redundant
            }
        }
        Some(p) => {
            pivots.push(p);
            rhs.push(r);
            LocalOutcome::Added
        }
    }
}

/// Single-word Gauss-Jordan eliminator for free spaces of dimension
/// `<= 63`: every row is one `u64` with the right-hand side packed
/// into bit 63, rows are indexed by their pivot bit and kept mutually
/// reduced, so folding an equation is a couple of register XORs (the
/// rhs bit rides along in the same XORs).
#[derive(Clone)]
struct FastElim {
    rows: [u64; 64],
    pivot_mask: u64,
}

impl FastElim {
    /// Coordinate bits of a packed row (bit 63 is the rhs).
    const ROW_MASK: u64 = (1u64 << 63) - 1;

    fn new() -> FastElim {
        FastElim {
            rows: [0u64; 64],
            pivot_mask: 0,
        }
    }

    fn rank(&self) -> usize {
        self.pivot_mask.count_ones() as usize
    }

    /// Forward-reduces a row against the eliminated rows without
    /// inserting; rhs travels in bit 63. Jordan rows carry no pivot
    /// bit but their own, so one pass over the initial pivot overlap
    /// is a complete reduction.
    #[inline]
    fn reduce_packed(&self, mut packed: u64) -> u64 {
        let mut m = packed & self.pivot_mask;
        while m != 0 {
            packed ^= self.rows[m.trailing_zeros() as usize];
            m &= m - 1;
        }
        packed
    }

    /// [`reduce_packed`](Self::reduce_packed) with an unpacked rhs.
    #[inline]
    fn reduce(&self, row: u64, e: bool) -> (u64, bool) {
        let packed = self.reduce_packed(row | (u64::from(e) << 63));
        (packed & Self::ROW_MASK, packed >> 63 == 1)
    }

    /// Inserts an already-reduced, non-zero row, maintaining the
    /// Jordan invariant (the new pivot is cleared from every existing
    /// row). The maintenance loop is branchless — the XOR is masked by
    /// whether the row holds the new pivot — because its branch is
    /// data-dependent and mispredicts dominate otherwise.
    #[inline]
    fn insert_reduced(&mut self, row: u64, e: bool) {
        debug_assert!(row != 0 && row & self.pivot_mask == 0);
        let packed = row | (u64::from(e) << 63);
        let p = row.trailing_zeros() as usize;
        let mut mm = self.pivot_mask;
        while mm != 0 {
            let q = mm.trailing_zeros() as usize;
            let hit = 0u64.wrapping_sub((self.rows[q] >> p) & 1);
            self.rows[q] ^= packed & hit;
            mm &= mm - 1;
        }
        self.rows[p] = packed;
        self.pivot_mask |= 1 << p;
    }

    #[inline]
    fn fold_packed(&mut self, packed: u64) -> LocalOutcome {
        let packed = self.reduce_packed(packed);
        let row = packed & Self::ROW_MASK;
        if row == 0 {
            return if packed >> 63 == 1 {
                LocalOutcome::Conflict
            } else {
                LocalOutcome::Redundant
            };
        }
        self.insert_reduced(row, packed >> 63 == 1);
        LocalOutcome::Added
    }

    /// Stores the eliminated rows (packed) into `out`, ascending by
    /// pivot.
    fn store_packed(&self, out: &mut Vec<u64>) {
        out.clear();
        let mut m = self.pivot_mask;
        while m != 0 {
            out.push(self.rows[m.trailing_zeros() as usize]);
            m &= m - 1;
        }
    }
}

/// Per-encode constants for streaming projected tables: the sparse
/// transition-matrix rows and the phase-shifter tap columns of every
/// chain (the cycle-0 table rows, since `T^0 = I`).
struct StreamConsts {
    /// `t_rows[i]` = ones of row `i` of the transition matrix `T`.
    t_rows: Vec<Vec<u32>>,
    /// `ps_taps[chain]` = ones of the chain's phase-shifter row.
    ps_taps: Vec<Vec<u32>>,
}

impl StreamConsts {
    fn build(table: &ExprTable) -> StreamConsts {
        let t = table.transition();
        let t_rows = (0..t.row_count())
            .map(|i| t.row(i).iter_ones().map(|k| k as u32).collect())
            .collect();
        let ps_taps = (0..table.chains())
            .map(|chain| {
                let mut taps = Vec::new();
                for (wi, &w) in table.expr_words(0, chain).iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        taps.push((wi * 64 + w.trailing_zeros() as usize) as u32);
                        w &= w - 1;
                    }
                }
                taps
            })
            .collect();
        StreamConsts { t_rows, ps_taps }
    }
}

/// Truth-table probing engine for free spaces of dimension
/// `<= MAX_DIM`: the space holds at most `2^10` candidate seeds, so
/// every expression-table row is materialised as the **truth table**
/// of its output over all of them (streamed once via the transition
/// matrix). A candidate system's cached residue is simply the *mask
/// of seeds that satisfy it*:
///
/// * probing one equation = one word-AND with the row's truth table;
/// * the committed basis is one global constraint mask `C` (each
///   commit intersects it with the winner's cached mask);
/// * resuming a cached residue after commits = `mask &= C` — the
///   high-water-mark delta reduction collapses to an intersection,
///   because masks live in one fixed per-seed frame;
/// * added rank = `log2 |C| - log2 |mask|` (affine subspaces have
///   power-of-two sizes), conflict = empty mask — exactly the
///   invariants the reference search computes.
struct TtEngine {
    /// Words per mask (`2^dim / 64`, at least 1).
    w0: usize,
    /// `log2` of the current constraint-mask population (the solver's
    /// free-variable count).
    f_log: usize,
    /// Truth table of every expression-table row over the engine's
    /// frame, `w0` words per row.
    pt: Vec<u64>,
    /// The full frame's mask (`2^dim` low bits set).
    ones: Vec<u64>,
    /// Solution mask of everything committed since the frame was
    /// taken.
    c_mask: Vec<u64>,
}

impl TtEngine {
    /// Largest free dimension the truth-table tier handles (16 words
    /// per mask); larger spaces use the fixed-frame or general tiers.
    const MAX_DIM: usize = 10;

    fn build(
        space: &AffineSpace,
        table: &ExprTable,
        consts: &StreamConsts,
        recycle: Option<Vec<u64>>,
    ) -> TtEngine {
        let dim = space.dim();
        debug_assert!(dim <= Self::MAX_DIM);
        let w0 = ((1usize << dim) / 64).max(1);
        let n = space.vars();
        let chains = table.chains();
        let cycles = table.cycles();
        let mut ones = vec![!0u64; w0];
        if dim < 6 {
            ones[0] = (1u64 << (1usize << dim)) - 1;
        }
        // truth table of coordinate bit y_j over all y
        const PAT: [u64; 6] = [
            0xAAAA_AAAA_AAAA_AAAA,
            0xCCCC_CCCC_CCCC_CCCC,
            0xF0F0_F0F0_F0F0_F0F0,
            0xFF00_FF00_FF00_FF00,
            0xFFFF_0000_FFFF_0000,
            0xFFFF_FFFF_0000_0000,
        ];
        let var_mask = |j: usize, m: &mut [u64]| {
            if j < 6 {
                m.fill(PAT[j]);
            } else {
                for (wi, w) in m.iter_mut().enumerate() {
                    *w = if (wi >> (j - 6)) & 1 == 1 { !0 } else { 0 };
                }
            }
            for (a, b) in m.iter_mut().zip(&ones) {
                *a &= *b;
            }
        };
        // TT[i] = truth table of ambient variable i over x0 + N y
        let mut tt = vec![0u64; n * w0];
        let mut vm = vec![0u64; w0];
        for j in 0..dim {
            var_mask(j, &mut vm);
            for (wi, &word) in space.null_row(j).iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let i = wi * 64 + word.trailing_zeros() as usize;
                    words::xor_in(&mut tt[i * w0..(i + 1) * w0], &vm);
                    word &= word - 1;
                }
            }
        }
        for (wi, &word) in space.x0_words().iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let i = wi * 64 + word.trailing_zeros() as usize;
                let row = &mut tt[i * w0..(i + 1) * w0];
                for (a, b) in row.iter_mut().zip(&ones) {
                    *a ^= *b;
                }
                word &= word - 1;
            }
        }
        // stream the table: row (c+1) is row c advanced by T
        let mut pt = recycle.unwrap_or_default();
        pt.clear();
        pt.resize(cycles * chains * w0, 0);
        let mut tt_next = vec![0u64; n * w0];
        for c in 0..cycles {
            let base = c * chains * w0;
            for (ch, taps) in consts.ps_taps.iter().enumerate() {
                let out = &mut pt[base + ch * w0..base + (ch + 1) * w0];
                for &tap in taps {
                    let src = &tt[tap as usize * w0..(tap as usize + 1) * w0];
                    words::xor_in(out, src);
                }
            }
            if c + 1 < cycles {
                for (i, trow) in consts.t_rows.iter().enumerate() {
                    let out = &mut tt_next[i * w0..(i + 1) * w0];
                    out.fill(0);
                    for &k in trow {
                        let src = &tt[k as usize * w0..(k as usize + 1) * w0];
                        for (a, b) in out.iter_mut().zip(src) {
                            *a ^= *b;
                        }
                    }
                }
                std::mem::swap(&mut tt, &mut tt_next);
            }
        }
        let c_mask = ones.clone();
        TtEngine {
            w0,
            f_log: dim,
            pt,
            ones,
            c_mask,
        }
    }

    /// Intersects the constraint mask with the committed winner's
    /// solution mask; `free_vars` is the solver's post-commit
    /// free-variable count (= `log2` of the new population).
    fn commit_update(&mut self, winner: &[u64], free_vars: usize) {
        self.c_mask.copy_from_slice(winner);
        self.f_log = free_vars;
        debug_assert_eq!(
            self.c_mask
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>(),
            1usize << free_vars,
            "constraint mask population must match solver free vars"
        );
    }
}

/// Fixed-frame probing engine for free spaces of dimension
/// `11..=63`: the frame (affine space + streamed projected table) is
/// taken once per seed. Every table row is packed as
/// `projection | rhs << 63`, and — the crucial part — the table is
/// kept **pre-reduced modulo the committed rows**: each commit sweeps
/// its (few) new Jordan rows through the table, so a probed equation
/// only reduces against the candidate's own few local rows, and an
/// equation inconsistent with the committed basis alone dies on a
/// single load. Cached residues are the *local* rows (the rank the
/// candidate would add); commits append to a row log and a stale
/// residue is resumed by folding in only the log suffix past its
/// high-water mark.
struct FixedEngine {
    dim: usize,
    /// Packed per-row projection, pre-reduced mod `g`: bits `0..dim` =
    /// coordinates, bit 63 = right-hand side.
    pt: Vec<u64>,
    /// Eliminated committed rows (everything since the frame).
    g: FastElim,
    /// Append-only log of the committed rows as inserted — the replay
    /// source for high-water-mark resumption (packed form).
    g_log: Vec<u64>,
}

impl FixedEngine {
    /// Largest dimension the packed one-word representation handles
    /// (bit 63 carries the right-hand side).
    const MAX_DIM: usize = 63;

    fn build(
        space: &AffineSpace,
        table: &ExprTable,
        consts: &StreamConsts,
        recycle: Option<Vec<u64>>,
    ) -> FixedEngine {
        let dim = space.dim();
        debug_assert!(dim <= Self::MAX_DIM);
        let n = space.vars();
        let stride = space.stride();
        let chains = table.chains();
        let cycles = table.cycles();
        // W[i] bit j = (T^c N_j)[i], transposed so a chain's
        // projection is an XOR over its taps; starts as N itself
        let mut w = vec![0u64; n];
        for j in 0..dim {
            for (wi, &word) in space.null_row(j).iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    w[wi * 64 + word.trailing_zeros() as usize] |= 1u64 << j;
                    word &= word - 1;
                }
            }
        }
        // z = T^c x0 drives the packed rhs bit
        let mut z: Vec<u64> = space.x0_words().to_vec();
        let mut w_next = vec![0u64; n];
        let mut z_next = vec![0u64; stride];
        let mut pt = recycle.unwrap_or_default();
        pt.clear();
        pt.resize(cycles * chains, 0);
        for c in 0..cycles {
            let base = c * chains;
            for (ch, taps) in consts.ps_taps.iter().enumerate() {
                let mut row = 0u64;
                let mut e = false;
                for &tap in taps {
                    row ^= w[tap as usize];
                    e ^= words::get_bit(&z, tap as usize);
                }
                pt[base + ch] = row | (u64::from(e) << 63);
            }
            if c + 1 < cycles {
                z_next.fill(0);
                for (i, trow) in consts.t_rows.iter().enumerate() {
                    let mut acc = 0u64;
                    let mut zb = false;
                    for &k in trow {
                        acc ^= w[k as usize];
                        zb ^= words::get_bit(&z, k as usize);
                    }
                    w_next[i] = acc;
                    if zb {
                        z_next[i / 64] |= 1u64 << (i % 64);
                    }
                }
                std::mem::swap(&mut w, &mut w_next);
                std::mem::swap(&mut z, &mut z_next);
            }
        }
        FixedEngine {
            dim,
            pt,
            g: FastElim::new(),
            g_log: Vec::new(),
        }
    }

    /// Folds the committed winner's local residue rows (packed) into
    /// the global eliminator, the replay log, and the pre-reduced
    /// table.
    fn commit_update(&mut self, rows: &[u64]) {
        let mut by_pivot = [0u64; 64];
        let mut new_mask = 0u64;
        for &packed in rows {
            let (row, e) = self
                .g
                .reduce(packed & FastElim::ROW_MASK, packed >> 63 == 1);
            if row == 0 {
                debug_assert!(!e, "committed system cannot conflict");
                continue;
            }
            self.g.insert_reduced(row, e);
            let packed = row | (u64::from(e) << 63);
            self.g_log.push(packed);
            let p = row.trailing_zeros() as usize;
            by_pivot[p] = packed;
            new_mask |= 1u64 << p;
        }
        if new_mask == 0 {
            return;
        }
        // one sweep of the new basis rows through the projected table
        // so probing never reduces against committed rows again (the
        // rows are mutually Jordan, so one pivot pass per entry is a
        // complete reduction)
        for entry in &mut self.pt {
            let mut m = *entry & new_mask;
            while m != 0 {
                *entry ^= by_pivot[m.trailing_zeros() as usize];
                m &= m - 1;
            }
        }
    }

    /// Brings one cached residue up to the current log, dropping it on
    /// conflict: the stored local rows are reduced against the unseen
    /// log suffix and re-eliminated.
    fn refresh_entry(&self, entry: &mut PosResidue) -> bool {
        if entry.watermark == self.g_log.len() {
            return true;
        }
        let mut elim = FastElim::new();
        for &stored in &entry.rows {
            let mut row = stored;
            for &basis in &self.g_log[entry.watermark..] {
                if row
                    & FastElim::ROW_MASK
                    & (1u64 << (basis & FastElim::ROW_MASK).trailing_zeros())
                    != 0
                {
                    row ^= basis;
                }
            }
            if elim.fold_packed(row) == LocalOutcome::Conflict {
                return false;
            }
        }
        elim.store_packed(&mut entry.rows);
        entry.watermark = self.g_log.len();
        true
    }
}

/// General-width probing context (free dimension beyond 63): the
/// affine snapshot is rebuilt per round and candidates are projected
/// lazily; cached residues are resumed across rounds by an explicit
/// change of coordinates ([`Delta`]). This tier only runs for
/// pathological configurations (an LFSR grossly oversized for its
/// cubes) — as soon as commits shrink the space it hands over to the
/// word-sized tiers.
struct GeneralCtx {
    space: AffineSpace,
}

/// Change of coordinates between the free spaces before and after a
/// commit (general width): column `j'` is the old-space coordinate
/// vector of the new space's null basis vector `j'`, and `y0` the
/// old-space coordinates of the particular-solution shift. A cached
/// residue row `rho` maps to the new space as
/// `rho'[j'] = rho . kcol[j']`, `e' = e ^ (rho . y0)` — the per-round
/// delta that resumes each cached reduction instead of restarting it.
#[derive(Debug)]
struct Delta {
    /// `new_dim` columns, `old_fw` words each.
    kcols: Vec<u64>,
    /// Old-space coordinates of `x0_new ^ x0_old`, `old_fw` words.
    y0: Vec<u64>,
    old_fw: usize,
    new_dim: usize,
    new_fw: usize,
}

impl Delta {
    fn between(old: &AffineSpace, new: &AffineSpace) -> Delta {
        let old_fw = old.coord_stride();
        let new_dim = new.dim();
        let mut kcols = vec![0u64; new_dim * old_fw];
        for j in 0..new_dim {
            old.coords_of(new.null_row(j), &mut kcols[j * old_fw..(j + 1) * old_fw]);
        }
        let mut shift: Vec<u64> = old.x0_words().to_vec();
        words::xor_in(&mut shift, new.x0_words());
        let mut y0 = vec![0u64; old_fw];
        old.coords_of(&shift, &mut y0);
        Delta {
            kcols,
            y0,
            old_fw,
            new_dim,
            new_fw: new.coord_stride(),
        }
    }

    /// Re-expresses one cached row in the new space's coordinates,
    /// writing `new_fw` words into `out`; returns the new right-hand
    /// side.
    fn apply(&self, row: &[u64], e: bool, out: &mut [u64]) -> bool {
        out.fill(0);
        for j in 0..self.new_dim {
            if words::dot(row, &self.kcols[j * self.old_fw..(j + 1) * self.old_fw]) {
                out[j / 64] |= 1u64 << (j % 64);
            }
        }
        e ^ words::dot(row, &self.y0)
    }
}

/// The per-seed probing engine, picked (and later upgraded) by the
/// free dimension of the solution space.
#[allow(clippy::large_enum_variant)] // one prober exists per seed
enum Prober {
    Tt(TtEngine),
    Fixed(FixedEngine),
    General(GeneralCtx),
}

/// The window-based reseeding encoder.
///
/// # Example
///
/// ```
/// use ss_core::{ExprTable, WindowEncoder};
/// use ss_gf2::primitive_poly;
/// use ss_lfsr::{Lfsr, PhaseShifter};
/// use ss_testdata::{generate_test_set, CubeProfile};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let profile = CubeProfile::mini();
/// let set = generate_test_set(&profile, 5);
/// let lfsr = Lfsr::fibonacci(primitive_poly(profile.lfsr_size)?);
/// let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(2);
/// let shifter = PhaseShifter::synthesize(
///     profile.lfsr_size, set.config().chains(), 3, &mut rng)?;
/// let table = ExprTable::build(&lfsr, &shifter, set.config(), 20);
/// let result = WindowEncoder::new(&set, &table)?.encode(42)?;
/// assert_eq!(result.encoded_cubes, set.len());
/// assert!(result.tdv() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WindowEncoder<'a> {
    set: &'a TestSet,
    table: &'a ExprTable,
}

impl<'a> WindowEncoder<'a> {
    /// Binds an encoder to a test set and a prebuilt expression table.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::GeometryMismatch`] if the table was built
    /// for a different scan geometry.
    pub fn new(set: &'a TestSet, table: &'a ExprTable) -> Result<Self, EncodeError> {
        if set.config() != table.scan() {
            return Err(EncodeError::GeometryMismatch);
        }
        Ok(WindowEncoder { set, table })
    }

    /// Runs the encoding; `fill_seed` drives the pseudorandom fill of
    /// free seed variables (and nothing else), so results are fully
    /// deterministic.
    ///
    /// This is the incremental projected-residue search on a single
    /// thread — bit-identical to
    /// [`encode_reference`](Self::encode_reference) and to
    /// [`encode_with_threads`](Self::encode_with_threads) at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CubeUnencodable`] if some cube cannot be
    /// encoded even alone in an empty window.
    pub fn encode(&self, fill_seed: u64) -> Result<EncodingResult, EncodeError> {
        self.encode_with_threads(fill_seed, 1)
    }

    /// [`encode`](Self::encode) with candidate probing parallelised
    /// across up to `threads` scoped worker threads (clamped to at
    /// least 1). The winning placement each round is the minimum of
    /// the strict total order `(added rank, viable-position count,
    /// position, cube index)` within the shallowest solvable level,
    /// so the output is **bit-identical for every thread count** — a
    /// contract the workspace property tests pin.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CubeUnencodable`] if some cube cannot be
    /// encoded even alone in an empty window.
    pub fn encode_with_threads(
        &self,
        fill_seed: u64,
        threads: usize,
    ) -> Result<EncodingResult, EncodeError> {
        // more workers than hardware threads cannot help (the
        // speculative descent sweep only pays off when it really runs
        // concurrently), so excess requests take the cheaper lazy path;
        // results are identical either way
        let hw = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.encode_tuned(fill_seed, threads.clamp(1, hw), DESCENT_LEVELS, PAR_EQS)
    }

    /// [`encode_with_threads`](Self::encode_with_threads) with the
    /// dispatch thresholds exposed: tests force tiny thresholds so the
    /// parallel machinery is exercised (and pinned bit-identical) even
    /// on small workloads and single-CPU machines.
    fn encode_tuned(
        &self,
        fill_seed: u64,
        threads: usize,
        descent_levels: usize,
        par_eqs: usize,
    ) -> Result<EncodingResult, EncodeError> {
        let n = self.table.vars();
        let window = self.table.window();
        let threads = threads.max(1);
        let mut rng = SmallRng::seed_from_u64(fill_seed ^ 0x454e_434f_4445_5253); // "ENCODERS"
        let mut remaining: Vec<bool> = vec![true; self.set.len()];
        let mut remaining_count = self.set.len();
        let order = self.set.indices_by_specified_desc();
        let specified: Vec<usize> = (0..self.set.len())
            .map(|ci| self.set.cube(ci).specified_count())
            .collect();
        let mut caches: Vec<CubeCache> =
            (0..self.set.len()).map(|_| CubeCache::default()).collect();
        let mut level_order: Vec<usize> = Vec::with_capacity(self.set.len());
        let consts = StreamConsts::build(self.table);
        // per-cube equations as (position-independent row offset, bit),
        // sorted by offset: the scan-geometry arithmetic and care-bit
        // iteration are paid once per cube, and probing walks each
        // position's table block in ascending address order
        // (equation order cannot change probe outcomes)
        let cube_eqs: Vec<Vec<(u32, bool)>> = (0..self.set.len())
            .map(|ci| {
                let mut eqs: Vec<(u32, bool)> = self
                    .set
                    .cube(ci)
                    .iter_specified()
                    .map(|(cell, bit)| (self.table.row_offset(cell) as u32, bit))
                    .collect();
                eqs.sort_unstable_by_key(|&(off, _)| off);
                eqs
            })
            .collect();
        let cube_eqs = &cube_eqs;
        let mut scratch = ProbeScratch::default();
        let mut recycled_pt: Option<Vec<u64>> = None;
        let mut seeds = Vec::new();

        while remaining_count > 0 {
            let mut solver = IncrementalSolver::new(n);
            let mut placements = Vec::new();
            for cache in &mut caches {
                cache.reset();
            }

            // 1. seed the window with the biggest remaining cube at
            //    position 0 (position choice is irrelevant for
            //    solvability; see encode_reference).
            let first = order
                .iter()
                .copied()
                .find(|&ci| remaining[ci])
                .expect("remaining_count > 0");
            if !self.commit(&mut solver, first, 0) {
                return Err(EncodeError::CubeUnencodable {
                    cube: first,
                    specified: specified[first],
                    lfsr_size: n,
                });
            }
            placements.push(Placement {
                cube: first,
                position: 0,
            });
            remaining[first] = false;
            remaining_count -= 1;

            // 2. greedy fill over cached residues (tier picked by the
            //    free dimension the first commit left)
            let mut prober = {
                let space = solver.affine_space();
                if space.dim() <= TtEngine::MAX_DIM {
                    Prober::Tt(TtEngine::build(
                        &space,
                        self.table,
                        &consts,
                        recycled_pt.take(),
                    ))
                } else if space.dim() <= FixedEngine::MAX_DIM {
                    Prober::Fixed(FixedEngine::build(
                        &space,
                        self.table,
                        &consts,
                        recycled_pt.take(),
                    ))
                } else {
                    Prober::General(GeneralCtx { space })
                }
            };
            while solver.rank() < n {
                level_order.clear();
                level_order.extend(order.iter().copied().filter(|&ci| remaining[ci]));
                let Some(pick) = self.select_cached(
                    &mut caches,
                    &level_order,
                    &specified,
                    cube_eqs,
                    &prober,
                    threads,
                    descent_levels,
                    par_eqs,
                    &mut scratch,
                ) else {
                    break;
                };
                // the word-sized tiers consume the winner's cached
                // residue at commit time, before its cache is cleared
                let winner: Option<(Vec<u64>, Vec<bool>)> = match &prober {
                    Prober::Tt(engine) => {
                        let entry = caches[pick.cube]
                            .entries
                            .iter()
                            .find(|e| e.position == pick.position)
                            .expect("picked placement has a cached residue");
                        Some((
                            entry
                                .rows
                                .iter()
                                .zip(&engine.c_mask)
                                .map(|(a, b)| a & b)
                                .collect(),
                            Vec::new(),
                        ))
                    }
                    Prober::Fixed(_) => {
                        let entry = caches[pick.cube]
                            .entries
                            .iter()
                            .find(|e| e.position == pick.position)
                            .expect("picked placement has a cached residue");
                        Some((entry.rows.clone(), Vec::new()))
                    }
                    Prober::General(_) => None,
                };
                let rank_before = solver.rank();
                let committed = self.commit(&mut solver, pick.cube, pick.position);
                debug_assert!(committed, "selected system must still be solvable");
                placements.push(pick);
                remaining[pick.cube] = false;
                remaining_count -= 1;
                caches[pick.cube].reset();
                if solver.rank() == n {
                    break;
                }
                match &mut prober {
                    Prober::Tt(engine) => {
                        // delta reduction in the fixed frame: cached
                        // masks simply intersect the new constraint
                        let (mask, _) = winner.expect("tt tier captured the winner");
                        engine.commit_update(&mask, solver.free_vars());
                    }
                    Prober::Fixed(engine) => {
                        let (rows, _) = winner.expect("fixed tier captured the winner");
                        engine.commit_update(&rows);
                        debug_assert_eq!(engine.g.rank(), engine.dim - solver.free_vars());
                    }
                    Prober::General(ctx) => {
                        if solver.rank() > rank_before {
                            // resume every cached residue in the
                            // shrunken free space: per-round delta
                            let new_space = solver.affine_space();
                            let delta = Delta::between(&ctx.space, &new_space);
                            for cache in &mut caches {
                                if cache.init {
                                    refresh_cache_general(cache, &delta, &mut scratch);
                                }
                            }
                            ctx.space = new_space;
                        }
                    }
                }
                // hand over to a cheaper tier once the free space has
                // shrunk into its range. Caches restart — viability is
                // an invariant of the basis, so the re-probe
                // reproduces exactly the same sets.
                let free = solver.free_vars();
                let upgrade = match &prober {
                    Prober::Tt(_) => false,
                    Prober::Fixed(_) => free <= TtEngine::MAX_DIM,
                    Prober::General(_) => free <= FixedEngine::MAX_DIM,
                };
                if upgrade {
                    let space = solver.affine_space();
                    let recycle = match &mut prober {
                        Prober::Tt(engine) => Some(std::mem::take(&mut engine.pt)),
                        Prober::Fixed(engine) => Some(std::mem::take(&mut engine.pt)),
                        Prober::General(_) => recycled_pt.take(),
                    };
                    prober = if free <= TtEngine::MAX_DIM {
                        Prober::Tt(TtEngine::build(&space, self.table, &consts, recycle))
                    } else {
                        Prober::Fixed(FixedEngine::build(&space, self.table, &consts, recycle))
                    };
                    for cache in &mut caches {
                        if cache.init {
                            cache.reset();
                        }
                    }
                }
            }
            match prober {
                Prober::Tt(engine) => recycled_pt = Some(engine.pt),
                Prober::Fixed(engine) => recycled_pt = Some(engine.pt),
                Prober::General(_) => {}
            }

            // 3. fast path: at full rank the window is *uniquely*
            //    determined, so "solvable" degenerates to "already
            //    embedded" — one concrete matching pass places every
            //    remaining embedded cube at once.
            let seed = solver.solve_with(|_| rng.gen());
            debug_assert!(solver.check(&seed));
            if solver.rank() == n {
                let vectors = self.table.expand(&seed);
                for &ci in &order {
                    if !remaining[ci] {
                        continue;
                    }
                    let cube = self.set.cube(ci);
                    if let Some(v) = vectors.iter().position(|vec| cube.matches(vec)) {
                        placements.push(Placement {
                            cube: ci,
                            position: v,
                        });
                        remaining[ci] = false;
                        remaining_count -= 1;
                    }
                }
            }
            seeds.push(EncodedSeed { seed, placements });
        }

        Ok(EncodingResult {
            seeds,
            window,
            lfsr_size: n,
            encoded_cubes: self.set.len(),
        })
    }

    /// Applies the selection criteria over the remaining cubes
    /// (`level_order`: remaining cubes, most specified bits first):
    /// probe level by level and hand back the best candidate of the
    /// shallowest level that has one — exactly the reference search's
    /// early-exit structure. The first levels are probed serially
    /// (lazy probing against the most-constrained basis is cheapest);
    /// once a round descends past them without finding a candidate it
    /// is almost always a full sweep of every remaining cube, so with
    /// threads available the whole remainder is probed as one
    /// parallel batch. Deeper-than-needed probes are cached and
    /// reused by the seed's later rounds, and probe outcomes are
    /// invariants of the basis, so neither batching nor scheduling
    /// can change the selected placement.
    #[allow(clippy::too_many_arguments)] // internal hot path, all context-bound
    fn select_cached(
        &self,
        caches: &mut [CubeCache],
        level_order: &[usize],
        specified: &[usize],
        cube_eqs: &[Vec<(u32, bool)>],
        prober: &Prober,
        threads: usize,
        descent_levels: usize,
        par_eqs: usize,
        scratch: &mut ProbeScratch,
    ) -> Option<Placement> {
        let window = self.table.window();
        let mut i = 0;
        let mut levels_done = 0usize;
        while i < level_order.len() {
            if threads > 1 && levels_done >= descent_levels {
                // deep descent: sweep everything left in one batch
                let batch = &level_order[i..];
                let fresh_eqs: usize = batch
                    .iter()
                    .filter(|&&ci| !caches[ci].init)
                    .map(|&ci| specified[ci] * window)
                    .sum();
                if fresh_eqs >= par_eqs {
                    let keys =
                        self.probe_batch(batch, caches, cube_eqs, prober, threads, true, scratch);
                    let mut k = 0;
                    while k < batch.len() {
                        let level = specified[batch[k]];
                        let mut best: Option<Key> = None;
                        while k < batch.len() && specified[batch[k]] == level {
                            if let Some(key) = keys[k] {
                                if best.is_none_or(|b| key < b) {
                                    best = Some(key);
                                }
                            }
                            k += 1;
                        }
                        if let Some((_, _, position, cube)) = best {
                            return Some(Placement { cube, position });
                        }
                    }
                    return None;
                }
            }
            let mut j = i;
            let level = specified[level_order[i]];
            while j < level_order.len() && specified[level_order[j]] == level {
                j += 1;
            }
            let batch = &level_order[i..j];
            let keys = self.probe_batch(batch, caches, cube_eqs, prober, threads, false, scratch);
            let mut best: Option<Key> = None;
            for key in keys.into_iter().flatten() {
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            if let Some((_, _, position, cube)) = best {
                return Some(Placement { cube, position });
            }
            i = j;
            levels_done += 1;
        }
        None
    }

    /// Probes one batch of cubes (initialising first-visit caches, in
    /// parallel when the caller judged the first-visit equation volume
    /// worth a dispatch) and returns each cube's candidate key,
    /// aligned with `batch`. Serial probing reuses the per-encode
    /// scratch; parallel workers carry their own.
    #[allow(clippy::too_many_arguments)] // internal hot path, all context-bound
    fn probe_batch(
        &self,
        batch: &[usize],
        caches: &mut [CubeCache],
        cube_eqs: &[Vec<(u32, bool)>],
        prober: &Prober,
        threads: usize,
        parallel: bool,
        scratch: &mut ProbeScratch,
    ) -> Vec<Option<Key>> {
        if !parallel {
            return batch
                .iter()
                .map(|&ci| self.probe_cube(ci, &mut caches[ci], cube_eqs, prober, scratch))
                .collect();
        }
        // hand each worker a disjoint set of (cube, cache) pairs;
        // workers only read the shared engine and mutate their own
        // caches, and results are merged back by batch index, so
        // scheduling cannot influence the outcome
        let mut sorted: Vec<(usize, usize)> = batch.iter().copied().enumerate().collect();
        sorted.sort_unstable_by_key(|&(_, ci)| ci);
        let mut work: Vec<WorkItem<'_>> = Vec::with_capacity(sorted.len());
        let mut next = sorted.iter().copied().peekable();
        for (ci, cache) in caches.iter_mut().enumerate() {
            if next.peek().map(|&(_, c)| c) == Some(ci) {
                let (bi, _) = next.next().expect("peeked");
                work.push((bi, ci, cache));
            }
        }
        // many small chunks claimed through an atomic index: the
        // per-cube probing cost is wildly uneven (fresh vs cached,
        // conflict depth), so static chunking leaves workers idle
        let n_chunks = (threads * 8).clamp(1, work.len().max(1));
        let chunk_size = work.len().div_ceil(n_chunks);
        let chunks: Vec<std::sync::Mutex<&mut [WorkItem<'_>]>> = work
            .chunks_mut(chunk_size)
            .map(std::sync::Mutex::new)
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut keys: Vec<Option<Key>> = vec![None; batch.len()];
        thread::scope(|scope| {
            let chunks = &chunks;
            let next = &next;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut scratch = ProbeScratch::default();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= chunks.len() {
                                break;
                            }
                            let mut chunk = chunks[i].lock().expect("chunk claimed once");
                            for (bi, ci, cache) in chunk.iter_mut() {
                                out.push((
                                    *bi,
                                    self.probe_cube(*ci, cache, cube_eqs, prober, &mut scratch),
                                ));
                            }
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(done) => {
                        for (bi, key) in done {
                            keys[bi] = key;
                        }
                    }
                    Err(payload) => panic::resume_unwind(payload),
                }
            }
        });
        keys
    }

    /// Initialises one cube's residue caches on first visit, resumes
    /// stale residues on revisits (high-water mark / constraint
    /// intersection), and returns the cube's candidate key.
    fn probe_cube(
        &self,
        ci: usize,
        cache: &mut CubeCache,
        cube_eqs: &[Vec<(u32, bool)>],
        prober: &Prober,
        scratch: &mut ProbeScratch,
    ) -> Option<Key> {
        match prober {
            Prober::Tt(engine) => {
                if !cache.init {
                    cache.init = true;
                    self.init_cube_tt(cache, &cube_eqs[ci], engine, scratch);
                } else {
                    // delta reduction: intersect every cached mask
                    // with the constraint accumulated since the last
                    // visit, pruning emptied (conflicted) positions
                    cache.prune(|entry| {
                        let mut any = 0u64;
                        for (m, &c) in entry.rows.iter_mut().zip(&engine.c_mask) {
                            *m &= c;
                            any |= *m;
                        }
                        any != 0
                    });
                }
                let count = cache.entries.len();
                let mut best: Option<(usize, usize)> = None; // (rank, pos)
                for entry in &cache.entries {
                    let pop: usize = entry.rows.iter().map(|w| w.count_ones() as usize).sum();
                    debug_assert!(pop.is_power_of_two(), "affine subspaces have 2^k points");
                    let rank = engine.f_log - pop.trailing_zeros() as usize;
                    let key = (rank, entry.position);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                best.map(|(rank, pos)| (rank, count, pos, ci))
            }
            Prober::Fixed(engine) => {
                if !cache.init {
                    cache.init = true;
                    self.init_cube_fixed(cache, &cube_eqs[ci], engine);
                } else {
                    // high-water-mark resumption against the committed
                    // row log
                    cache.prune(|entry| engine.refresh_entry(entry));
                }
                let count = cache.entries.len();
                let mut best: Option<(usize, usize)> = None; // (rank, pos)
                for entry in &cache.entries {
                    let key = (entry.rows.len(), entry.position);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                best.map(|(rank, pos)| (rank, count, pos, ci))
            }
            Prober::General(ctx) => {
                if !cache.init {
                    cache.init = true;
                    self.init_cube_general(cache, &cube_eqs[ci], &ctx.space, scratch);
                }
                let count = cache.entries.len();
                let mut best: Option<(usize, usize)> = None; // (rank, pos)
                for entry in &cache.entries {
                    let key = (entry.rhs.len(), entry.position);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                best.map(|(rank, pos)| (rank, count, pos, ci))
            }
        }
    }

    /// First-visit probe of every window position, truth-table tier:
    /// start from the current constraint mask and AND in each
    /// equation's satisfying-seed table row; surviving masks are the
    /// cached residues.
    fn init_cube_tt(
        &self,
        cache: &mut CubeCache,
        eqs: &[(u32, bool)],
        engine: &TtEngine,
        scratch: &mut ProbeScratch,
    ) {
        let w0 = engine.w0;
        let per_position = self.table.rows_per_position();
        for position in 0..self.table.window() {
            let pos_base = position * per_position;
            scratch.tmp.clear();
            scratch.tmp.extend_from_slice(&engine.c_mask);
            let mut live = true;
            for &(off, bit) in eqs {
                let idx = (pos_base + off as usize) * w0;
                let pt = &engine.pt[idx..idx + w0];
                let mut any = 0u64;
                if bit {
                    for (m, &p) in scratch.tmp.iter_mut().zip(pt) {
                        *m &= p;
                        any |= *m;
                    }
                } else {
                    for ((m, &p), &o) in scratch.tmp.iter_mut().zip(pt).zip(&engine.ones) {
                        *m &= p ^ o;
                        any |= *m;
                    }
                }
                if any == 0 {
                    live = false;
                    break;
                }
            }
            if live {
                let mut entry = cache.take_entry();
                entry.position = position;
                entry.watermark = 0;
                entry.rows.clear();
                entry.rows.extend_from_slice(&scratch.tmp);
                entry.rhs.clear();
                cache.entries.push(entry);
            }
        }
    }

    /// First-visit probe of every window position, fixed-frame tier:
    /// fold each equation's packed, committed-row-reduced table row
    /// into a local elimination — the surviving rows are exactly the
    /// rank the candidate would add, and equations inconsistent with
    /// the committed basis alone conflict on a single load.
    fn init_cube_fixed(&self, cache: &mut CubeCache, eqs: &[(u32, bool)], engine: &FixedEngine) {
        let per_position = self.table.rows_per_position();
        for position in 0..self.table.window() {
            let pos_base = position * per_position;
            let mut elim = FastElim::new();
            let mut viable = true;
            for &(off, bit) in eqs {
                // table bit 63 is the x0 offset; the equation's rhs is
                // that offset xor the cube bit
                let packed = engine.pt[pos_base + off as usize] ^ (u64::from(bit) << 63);
                if elim.fold_packed(packed) == LocalOutcome::Conflict {
                    viable = false;
                    break;
                }
            }
            if viable {
                let mut entry = cache.take_entry();
                entry.position = position;
                entry.watermark = engine.g_log.len();
                entry.rhs.clear();
                elim.store_packed(&mut entry.rows);
                cache.entries.push(entry);
            }
        }
    }

    /// First-visit probe of every window position, general-width tier
    /// (free dimension beyond 63): lazy projection per equation.
    fn init_cube_general(
        &self,
        cache: &mut CubeCache,
        eqs: &[(u32, bool)],
        space: &AffineSpace,
        scratch: &mut ProbeScratch,
    ) {
        let fw = space.coord_stride();
        let per_position = self.table.rows_per_position();
        scratch.tmp.resize(fw, 0);
        for position in 0..self.table.window() {
            let pos_base = position * per_position;
            scratch.rows.clear();
            scratch.rhs.clear();
            scratch.pivots.clear();
            let mut viable = true;
            for &(off, bit) in eqs {
                let coeffs = self.table.row_words(pos_base + off as usize);
                let e = space.project(coeffs, bit, &mut scratch.tmp);
                if fold_row(
                    &scratch.tmp,
                    e,
                    fw,
                    &mut scratch.rows,
                    &mut scratch.rhs,
                    &mut scratch.pivots,
                ) == LocalOutcome::Conflict
                {
                    viable = false;
                    break;
                }
            }
            if viable {
                let mut entry = cache.take_entry();
                entry.position = position;
                entry.watermark = 0;
                entry.rows.clear();
                entry.rows.extend_from_slice(&scratch.rows);
                entry.rhs.clear();
                entry.rhs.extend_from_slice(&scratch.rhs);
                cache.entries.push(entry);
            }
        }
    }

    /// Tries the full system of `cube` at window `position` through the
    /// solver's borrowed word-slice path; commits on success, rolls
    /// back and returns `false` on conflict. Insertion order matches
    /// the reference search, so the committed basis — and therefore the
    /// solved seed bits — are identical.
    fn commit(&self, solver: &mut IncrementalSolver, cube: usize, position: usize) -> bool {
        let cp = solver.checkpoint();
        for (cell, bit) in self.set.cube(cube).iter_specified() {
            let expr = self.table.cell_expr_words(position, cell);
            if solver.insert_words(expr, bit) == SolveOutcome::Conflict {
                solver.rollback(cp);
                return false;
            }
        }
        true
    }

    /// The pre-overhaul greedy search, kept verbatim as the reference
    /// oracle: it re-eliminates every candidate system from scratch
    /// each round (O(candidates x specified bits x rank) per round) and
    /// materialises a [`BitVec`] per probed equation. Property tests
    /// and the `encode_scaling` bench pin [`encode`](Self::encode) and
    /// [`encode_with_threads`](Self::encode_with_threads) bit-identical
    /// to this.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CubeUnencodable`] if some cube cannot be
    /// encoded even alone in an empty window.
    pub fn encode_reference(&self, fill_seed: u64) -> Result<EncodingResult, EncodeError> {
        let n = self.table.vars();
        let window = self.table.window();
        let mut rng = SmallRng::seed_from_u64(fill_seed ^ 0x454e_434f_4445_5253); // "ENCODERS"
        let mut remaining: Vec<bool> = vec![true; self.set.len()];
        let mut remaining_count = self.set.len();
        let order = self.set.indices_by_specified_desc();
        let mut seeds = Vec::new();

        while remaining_count > 0 {
            let mut solver = IncrementalSolver::new(n);
            let mut placements = Vec::new();

            // 1. seed the window with the biggest remaining cube at
            //    position 0. Trying other positions cannot help: moving
            //    a cube from position 0 to position v multiplies every
            //    expression by the invertible matrix T^(v*r), which
            //    preserves both dependencies and their (in)consistency.
            let first = order
                .iter()
                .copied()
                .find(|&ci| remaining[ci])
                .expect("remaining_count > 0");
            if !self.try_commit(&mut solver, first, 0) {
                return Err(EncodeError::CubeUnencodable {
                    cube: first,
                    specified: self.set.cube(first).specified_count(),
                    lfsr_size: n,
                });
            }
            placements.push(Placement {
                cube: first,
                position: 0,
            });
            remaining[first] = false;
            remaining_count -= 1;

            // 2. greedy fill; viable-position caches shrink monotonically
            let mut viable: HashMap<usize, Vec<usize>> = HashMap::new();
            while solver.rank() < n {
                let Some(pick) = self.select_next(&mut viable, &remaining, &order, &mut solver)
                else {
                    break;
                };
                let committed = self.try_commit(&mut solver, pick.cube, pick.position);
                debug_assert!(committed, "selected system must still be solvable");
                placements.push(pick);
                remaining[pick.cube] = false;
                remaining_count -= 1;
                viable.remove(&pick.cube);
            }

            // 3. fast path: at full rank the window is *uniquely*
            //    determined, so "solvable" degenerates to "already
            //    embedded" — one concrete matching pass places every
            //    remaining embedded cube at once (each at its earliest
            //    position, which is what the selection criteria would
            //    have chosen among these zero-rank systems anyway).
            let seed = solver.solve_with(|_| rng.gen());
            debug_assert!(solver.check(&seed));
            if solver.rank() == n {
                let vectors = self.table.expand(&seed);
                for &ci in &order {
                    if !remaining[ci] {
                        continue;
                    }
                    let cube = self.set.cube(ci);
                    if let Some(v) = vectors.iter().position(|vec| cube.matches(vec)) {
                        placements.push(Placement {
                            cube: ci,
                            position: v,
                        });
                        remaining[ci] = false;
                        remaining_count -= 1;
                    }
                }
            }
            seeds.push(EncodedSeed { seed, placements });
        }

        Ok(EncodingResult {
            seeds,
            window,
            lfsr_size: n,
            encoded_cubes: self.set.len(),
        })
    }

    /// Applies the paper's selection criteria over the remaining cubes.
    fn select_next(
        &self,
        viable: &mut HashMap<usize, Vec<usize>>,
        remaining: &[bool],
        order: &[usize],
        solver: &mut IncrementalSolver,
    ) -> Option<Placement> {
        let window = self.table.window();
        let mut level = usize::MAX; // specified count of the current level
        let mut best: Option<Key> = None;

        for &ci in order {
            if !remaining[ci] {
                continue;
            }
            let specified = self.set.cube(ci).specified_count();
            if best.is_some() && specified < level {
                // order is descending: a lower level can't win anymore
                break;
            }
            level = specified;

            let positions = viable.entry(ci).or_insert_with(|| (0..window).collect());
            let mut kept = Vec::with_capacity(positions.len());
            let mut cube_best: Option<(usize, usize)> = None; // (rank, pos)
            for &v in positions.iter() {
                // a None probe is a conflict: the position is dropped
                // permanently by not re-adding it to `kept`
                if let Some(rank) = self.probe_rank(solver, ci, v) {
                    kept.push(v);
                    if cube_best.is_none_or(|(r, p)| (rank, v) < (r, p)) {
                        cube_best = Some((rank, v));
                    }
                }
            }
            *positions = kept;
            if let Some((rank, pos)) = cube_best {
                let count = positions.len();
                let key = (rank, count, pos, ci);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, position, cube)| Placement { cube, position })
    }

    /// Tries the full system of `cube` at window `position`; commits on
    /// success, rolls back and returns `false` on conflict.
    fn try_commit(&self, solver: &mut IncrementalSolver, cube: usize, position: usize) -> bool {
        let cp = solver.checkpoint();
        for (cell, bit) in self.set.cube(cube).iter_specified() {
            let expr = self.table.cell_expr(position, cell);
            if solver.insert(&expr, bit) == SolveOutcome::Conflict {
                solver.rollback(cp);
                return false;
            }
        }
        true
    }

    /// Probes the system of `cube` at `position`: `Some(added_rank)` if
    /// solvable, `None` on conflict. The solver is restored to its
    /// entry state either way (checkpoint + rollback, O(1)).
    fn probe_rank(
        &self,
        solver: &mut IncrementalSolver,
        cube: usize,
        position: usize,
    ) -> Option<usize> {
        let cp = solver.checkpoint();
        let before = solver.rank();
        for (cell, bit) in self.set.cube(cube).iter_specified() {
            let expr = self.table.cell_expr(position, cell);
            if solver.insert(&expr, bit) == SolveOutcome::Conflict {
                solver.rollback(cp);
                return None;
            }
        }
        let added = solver.rank() - before;
        solver.rollback(cp);
        Some(added)
    }
}

/// Re-expresses every cached residue of one cube in the post-commit
/// free space and re-eliminates it there, dropping positions whose
/// system became inconsistent — the general tier's delta reduction.
fn refresh_cache_general(cache: &mut CubeCache, delta: &Delta, scratch: &mut ProbeScratch) {
    let old_fw = delta.old_fw;
    let new_fw = delta.new_fw;
    cache.entries.retain_mut(|entry| {
        scratch.tmp.resize(new_fw, 0);
        scratch.rows.clear();
        scratch.rhs.clear();
        scratch.pivots.clear();
        for idx in 0..entry.rhs.len() {
            let row = &entry.rows[idx * old_fw..(idx + 1) * old_fw];
            let e = delta.apply(row, entry.rhs[idx], &mut scratch.tmp);
            if fold_row(
                &scratch.tmp,
                e,
                new_fw,
                &mut scratch.rows,
                &mut scratch.rhs,
                &mut scratch.pivots,
            ) == LocalOutcome::Conflict
            {
                return false;
            }
        }
        std::mem::swap(&mut entry.rows, &mut scratch.rows);
        std::mem::swap(&mut entry.rhs, &mut scratch.rhs);
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ss_gf2::primitive_poly;
    use ss_lfsr::{Lfsr, PhaseShifter};
    use ss_testdata::{generate_test_set, CubeProfile, ScanConfig};

    fn build_table(n: usize, scan: ScanConfig, window: usize, seed: u64) -> ExprTable {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lfsr = Lfsr::fibonacci(primitive_poly(n).unwrap());
        let shifter = PhaseShifter::synthesize(n, scan.chains(), 3, &mut rng).unwrap();
        ExprTable::build(&lfsr, &shifter, scan, window)
    }

    fn mini_setup(window: usize) -> (ss_testdata::TestSet, ExprTable) {
        let profile = CubeProfile::mini();
        let set = generate_test_set(&profile, 5);
        let table = build_table(profile.lfsr_size, set.config(), window, 2);
        (set, table)
    }

    #[test]
    fn encodes_every_cube_exactly_once() {
        let (set, table) = mini_setup(20);
        let result = WindowEncoder::new(&set, &table).unwrap().encode(1).unwrap();
        let mut seen = vec![0usize; set.len()];
        for seed in &result.seeds {
            assert!(!seed.placements.is_empty());
            assert_eq!(seed.placements[0].position, 0, "first cube at window start");
            for p in &seed.placements {
                seen[p.cube] += 1;
                assert!(p.position < table.window());
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every cube placed exactly once"
        );
        assert_eq!(result.encoded_cubes, set.len());
        assert_eq!(result.tdv(), result.seeds.len() * 16);
        assert_eq!(result.tsl_original(), result.seeds.len() * 20);
    }

    #[test]
    fn placements_are_really_embedded_in_expanded_windows() {
        let (set, table) = mini_setup(16);
        let profile = CubeProfile::mini();
        let result = WindowEncoder::new(&set, &table).unwrap().encode(2).unwrap();

        // re-expand each seed concretely and check the placed cubes match
        let mut rng = SmallRng::seed_from_u64(2);
        let lfsr = Lfsr::fibonacci(primitive_poly(profile.lfsr_size).unwrap());
        let shifter =
            PhaseShifter::synthesize(profile.lfsr_size, set.config().chains(), 3, &mut rng)
                .unwrap();
        for enc in &result.seeds {
            let vectors =
                crate::pipeline::try_expand_seed(&lfsr, &shifter, set.config(), &enc.seed, 16)
                    .unwrap();
            for p in &enc.placements {
                assert!(
                    set.cube(p.cube).matches(&vectors[p.position]),
                    "cube {} not embedded at claimed position {}",
                    p.cube,
                    p.position
                );
            }
        }
    }

    #[test]
    fn cached_search_matches_the_reference_bit_for_bit() {
        for window in [1usize, 4, 12, 20] {
            let (set, table) = mini_setup(window);
            let enc = WindowEncoder::new(&set, &table).unwrap();
            let reference = enc.encode_reference(7).unwrap();
            assert_eq!(
                enc.encode(7).unwrap(),
                reference,
                "cached search diverged at L={window}"
            );
            for threads in [2usize, 4, 8] {
                assert_eq!(
                    enc.encode_with_threads(7, threads).unwrap(),
                    reference,
                    "parallel search diverged at L={window}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn forced_parallel_dispatch_matches_the_reference() {
        // tiny thresholds force the worker-pool and descent-sweep
        // paths even on small workloads and single-CPU machines
        for window in [6usize, 16] {
            let (set, table) = mini_setup(window);
            let enc = WindowEncoder::new(&set, &table).unwrap();
            let reference = enc.encode_reference(11).unwrap();
            for threads in [2usize, 4] {
                assert_eq!(
                    enc.encode_tuned(11, threads, 0, 0).unwrap(),
                    reference,
                    "forced parallel diverged at L={window}, {threads} threads"
                );
            }
        }
        // and for the fixed-frame tier
        let profile = CubeProfile::mini();
        let set = generate_test_set(&profile, 5);
        let table = build_table(30, set.config(), 8, 2);
        let enc = WindowEncoder::new(&set, &table).unwrap();
        assert_eq!(
            enc.encode_tuned(3, 4, 0, 0).unwrap(),
            enc.encode_reference(3).unwrap()
        );
    }

    #[test]
    fn fixed_frame_tier_matches_the_reference() {
        // an LFSR in the 11..=63 free-dimension band after the first
        // commit exercises the fixed-frame tier (and its mid-seed
        // hand-off to the truth-table tier as the space shrinks)
        let profile = CubeProfile::mini();
        let set = generate_test_set(&profile, 5);
        for n in [30usize, 48] {
            let table = build_table(n, set.config(), 8, 2);
            let enc = WindowEncoder::new(&set, &table).unwrap();
            let reference = enc.encode_reference(3).unwrap();
            assert_eq!(enc.encode(3).unwrap(), reference, "n={n}");
            assert_eq!(enc.encode_with_threads(3, 4).unwrap(), reference, "n={n}");
        }
    }

    #[test]
    fn general_width_path_matches_the_reference_beyond_63_free_dims() {
        // a deliberately oversized LFSR leaves > 63 free dimensions
        // after the first commit, forcing the multi-word probing path
        // (and its mid-seed hand-off to the word-sized tiers)
        let profile = CubeProfile::mini();
        let set = generate_test_set(&profile, 5);
        let table = build_table(90, set.config(), 6, 2);
        let enc = WindowEncoder::new(&set, &table).unwrap();
        let reference = enc.encode_reference(3).unwrap();
        assert_eq!(enc.encode(3).unwrap(), reference);
        assert_eq!(enc.encode_with_threads(3, 4).unwrap(), reference);
    }

    #[test]
    fn larger_windows_never_need_more_seeds() {
        let (set, table_small) = mini_setup(4);
        let profile = CubeProfile::mini();
        let table_large = {
            // same LFSR/shifter seeds as mini_setup for comparability
            build_table(profile.lfsr_size, set.config(), 40, 2)
        };
        let small = WindowEncoder::new(&set, &table_small)
            .unwrap()
            .encode(3)
            .unwrap();
        let large = WindowEncoder::new(&set, &table_large)
            .unwrap()
            .encode(3)
            .unwrap();
        assert!(
            large.seeds.len() <= small.seeds.len(),
            "L=40 used {} seeds, L=4 used {}",
            large.seeds.len(),
            small.seeds.len()
        );
    }

    #[test]
    fn window_one_degenerates_to_classical_reseeding() {
        let (set, _) = mini_setup(4);
        let profile = CubeProfile::mini();
        let table = build_table(profile.lfsr_size, set.config(), 1, 2);
        let result = WindowEncoder::new(&set, &table).unwrap().encode(4).unwrap();
        for seed in &result.seeds {
            for p in &seed.placements {
                assert_eq!(p.position, 0, "L=1 has a single position");
            }
        }
        assert_eq!(result.tsl_original(), result.seeds.len());
    }

    #[test]
    fn too_small_lfsr_reports_unencodable() {
        let profile = CubeProfile::mini(); // smax = 12
        let set = generate_test_set(&profile, 5);
        let table = build_table(8, set.config(), 4, 11); // 8-bit LFSR < smax
        let enc = WindowEncoder::new(&set, &table).unwrap();
        let err = enc.encode(5).unwrap_err();
        assert!(matches!(
            err,
            EncodeError::CubeUnencodable { lfsr_size: 8, .. }
        ));
        assert_eq!(err, enc.encode_reference(5).unwrap_err());
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let profile = CubeProfile::mini();
        let set = generate_test_set(&profile, 5);
        let other_scan = ScanConfig::new(4, 16).unwrap();
        let table = build_table(profile.lfsr_size, other_scan, 4, 11);
        assert_eq!(
            WindowEncoder::new(&set, &table).unwrap_err(),
            EncodeError::GeometryMismatch
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let (set, table) = mini_setup(12);
        let enc = WindowEncoder::new(&set, &table).unwrap();
        assert_eq!(enc.encode(9).unwrap(), enc.encode(9).unwrap());
    }
}
