//! Window-based multi-cube seed encoding (Section 2 of the paper).
//!
//! Each seed is expanded on-chip into a window of `L` pseudorandom
//! vectors, so a cube can be encoded at any of `L` window positions —
//! `L` candidate linear systems instead of one. The greedy algorithm
//! reproduced here (the paper attributes it to its ref. [11]) packs
//! cubes into a seed until no remaining cube is solvable anywhere in
//! the window:
//!
//! 1. start the seed with the unencoded cube carrying the most
//!    specified bits, placed at window position 0;
//! 2. repeatedly, among the solvable (cube, position) systems for the
//!    cubes with the most specified bits, pick the system that
//!    (a) replaces the fewest seed variables (adds the least rank),
//!    (b) belongs to the cube encodable at the fewest positions, and
//!    (c) sits nearest the start of the window;
//! 3. when nothing is solvable, draw the free variables pseudorandomly
//!    and emit the seed; repeat with the remaining cubes.
//!
//! Conflicts are monotone in the growing basis, so each seed keeps a
//! per-cube cache of still-viable positions that only ever shrinks.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ss_gf2::{BitVec, IncrementalSolver, SolveOutcome};
use ss_testdata::TestSet;

use crate::expr_table::ExprTable;

/// One intentional cube placement inside a seed's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the cube in the source [`TestSet`].
    pub cube: usize,
    /// Window position (vector index in `0..L`) the cube was encoded at.
    pub position: usize,
}

/// A computed seed and the cubes deliberately encoded in its window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSeed {
    /// The seed value (LFSR initial state).
    pub seed: BitVec,
    /// Intentional placements, in encoding order (the first is always
    /// at window position 0).
    pub placements: Vec<Placement>,
}

/// Result of encoding a whole test set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodingResult {
    /// The seeds, in application order.
    pub seeds: Vec<EncodedSeed>,
    /// Window length `L`.
    pub window: usize,
    /// LFSR size `n` (bits per seed).
    pub lfsr_size: usize,
    /// Number of cubes that were encoded (== the test set size on
    /// success).
    pub encoded_cubes: usize,
}

impl EncodingResult {
    /// Test data volume in bits: `seeds * n` (what the ATE stores).
    pub fn tdv(&self) -> usize {
        self.seeds.len() * self.lfsr_size
    }

    /// Test sequence length of the *plain* window-based scheme:
    /// every seed expands to the full window (`seeds * L` vectors).
    /// This is the "Orig." column of the paper's Tables 1 and 2.
    pub fn tsl_original(&self) -> usize {
        self.seeds.len() * self.window
    }
}

/// Error from [`WindowEncoder::encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// A cube could not be encoded alone at any window position — the
    /// LFSR is too small for the test set (`n < smax`, or pathological
    /// linear dependences).
    CubeUnencodable {
        /// Index of the offending cube.
        cube: usize,
        /// Its specified-bit count.
        specified: usize,
        /// The LFSR size that proved insufficient.
        lfsr_size: usize,
    },
    /// The expression table's scan geometry differs from the test
    /// set's.
    GeometryMismatch,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::CubeUnencodable {
                cube,
                specified,
                lfsr_size,
            } => write!(
                f,
                "cube {cube} ({specified} specified bits) is unencodable with a {lfsr_size}-bit LFSR"
            ),
            EncodeError::GeometryMismatch => {
                write!(f, "expression table scan geometry differs from the test set")
            }
        }
    }
}

impl Error for EncodeError {}

/// The window-based reseeding encoder.
///
/// # Example
///
/// ```
/// use ss_core::{ExprTable, WindowEncoder};
/// use ss_gf2::primitive_poly;
/// use ss_lfsr::{Lfsr, PhaseShifter};
/// use ss_testdata::{generate_test_set, CubeProfile};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let profile = CubeProfile::mini();
/// let set = generate_test_set(&profile, 5);
/// let lfsr = Lfsr::fibonacci(primitive_poly(profile.lfsr_size)?);
/// let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(2);
/// let shifter = PhaseShifter::synthesize(
///     profile.lfsr_size, set.config().chains(), 3, &mut rng)?;
/// let table = ExprTable::build(&lfsr, &shifter, set.config(), 20);
/// let result = WindowEncoder::new(&set, &table)?.encode(42)?;
/// assert_eq!(result.encoded_cubes, set.len());
/// assert!(result.tdv() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WindowEncoder<'a> {
    set: &'a TestSet,
    table: &'a ExprTable,
}

impl<'a> WindowEncoder<'a> {
    /// Binds an encoder to a test set and a prebuilt expression table.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::GeometryMismatch`] if the table was built
    /// for a different scan geometry.
    pub fn new(set: &'a TestSet, table: &'a ExprTable) -> Result<Self, EncodeError> {
        if set.config() != table.scan() {
            return Err(EncodeError::GeometryMismatch);
        }
        Ok(WindowEncoder { set, table })
    }

    /// Runs the encoding; `fill_seed` drives the pseudorandom fill of
    /// free seed variables (and nothing else), so results are fully
    /// deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CubeUnencodable`] if some cube cannot be
    /// encoded even alone in an empty window.
    pub fn encode(&self, fill_seed: u64) -> Result<EncodingResult, EncodeError> {
        let n = self.table.vars();
        let window = self.table.window();
        let mut rng = SmallRng::seed_from_u64(fill_seed ^ 0x454e_434f_4445_5253); // "ENCODERS"
        let mut remaining: Vec<bool> = vec![true; self.set.len()];
        let mut remaining_count = self.set.len();
        let order = self.set.indices_by_specified_desc();
        let mut seeds = Vec::new();

        while remaining_count > 0 {
            let mut solver = IncrementalSolver::new(n);
            let mut placements = Vec::new();

            // 1. seed the window with the biggest remaining cube at
            //    position 0. Trying other positions cannot help: moving
            //    a cube from position 0 to position v multiplies every
            //    expression by the invertible matrix T^(v*r), which
            //    preserves both dependencies and their (in)consistency.
            let first = order
                .iter()
                .copied()
                .find(|&ci| remaining[ci])
                .expect("remaining_count > 0");
            if !self.try_commit(&mut solver, first, 0) {
                return Err(EncodeError::CubeUnencodable {
                    cube: first,
                    specified: self.set.cube(first).specified_count(),
                    lfsr_size: n,
                });
            }
            placements.push(Placement {
                cube: first,
                position: 0,
            });
            remaining[first] = false;
            remaining_count -= 1;

            // 2. greedy fill; viable-position caches shrink monotonically
            let mut viable: HashMap<usize, Vec<usize>> = HashMap::new();
            while solver.rank() < n {
                let Some(pick) = self.select_next(&mut viable, &remaining, &order, &mut solver)
                else {
                    break;
                };
                let committed = self.try_commit(&mut solver, pick.cube, pick.position);
                debug_assert!(committed, "selected system must still be solvable");
                placements.push(pick);
                remaining[pick.cube] = false;
                remaining_count -= 1;
                viable.remove(&pick.cube);
            }

            // 3. fast path: at full rank the window is *uniquely*
            //    determined, so "solvable" degenerates to "already
            //    embedded" — one concrete matching pass places every
            //    remaining embedded cube at once (each at its earliest
            //    position, which is what the selection criteria would
            //    have chosen among these zero-rank systems anyway).
            let seed = solver.solve_with(|_| rng.gen());
            debug_assert!(solver.check(&seed));
            if solver.rank() == n {
                let vectors = self.table.expand(&seed);
                for &ci in &order {
                    if !remaining[ci] {
                        continue;
                    }
                    let cube = self.set.cube(ci);
                    if let Some(v) = vectors.iter().position(|vec| cube.matches(vec)) {
                        placements.push(Placement {
                            cube: ci,
                            position: v,
                        });
                        remaining[ci] = false;
                        remaining_count -= 1;
                    }
                }
            }
            seeds.push(EncodedSeed { seed, placements });
        }

        Ok(EncodingResult {
            seeds,
            window,
            lfsr_size: n,
            encoded_cubes: self.set.len(),
        })
    }

    /// Applies the paper's selection criteria over the remaining cubes.
    fn select_next(
        &self,
        viable: &mut HashMap<usize, Vec<usize>>,
        remaining: &[bool],
        order: &[usize],
        solver: &mut IncrementalSolver,
    ) -> Option<Placement> {
        let window = self.table.window();
        let mut level = usize::MAX; // specified count of the current level
        let mut best: Option<(usize, usize, usize, usize)> = None; // (rank, count, pos, cube)

        for &ci in order {
            if !remaining[ci] {
                continue;
            }
            let specified = self.set.cube(ci).specified_count();
            if best.is_some() && specified < level {
                // order is descending: a lower level can't win anymore
                break;
            }
            level = specified;

            let positions = viable.entry(ci).or_insert_with(|| (0..window).collect());
            let mut kept = Vec::with_capacity(positions.len());
            let mut cube_best: Option<(usize, usize)> = None; // (rank, pos)
            for &v in positions.iter() {
                // a None probe is a conflict: the position is dropped
                // permanently by not re-adding it to `kept`
                if let Some(rank) = self.probe_rank(solver, ci, v) {
                    kept.push(v);
                    if cube_best.is_none_or(|(r, p)| (rank, v) < (r, p)) {
                        cube_best = Some((rank, v));
                    }
                }
            }
            *positions = kept;
            if let Some((rank, pos)) = cube_best {
                let count = positions.len();
                let key = (rank, count, pos, ci);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, position, cube)| Placement { cube, position })
    }

    /// Tries the full system of `cube` at window `position`; commits on
    /// success, rolls back and returns `false` on conflict.
    fn try_commit(&self, solver: &mut IncrementalSolver, cube: usize, position: usize) -> bool {
        let cp = solver.checkpoint();
        for (cell, bit) in self.set.cube(cube).iter_specified() {
            let expr = self.table.cell_expr(position, cell);
            if solver.insert(&expr, bit) == SolveOutcome::Conflict {
                solver.rollback(cp);
                return false;
            }
        }
        true
    }

    /// Probes the system of `cube` at `position`: `Some(added_rank)` if
    /// solvable, `None` on conflict. The solver is restored to its
    /// entry state either way (checkpoint + rollback, O(1)).
    fn probe_rank(
        &self,
        solver: &mut IncrementalSolver,
        cube: usize,
        position: usize,
    ) -> Option<usize> {
        let cp = solver.checkpoint();
        let before = solver.rank();
        for (cell, bit) in self.set.cube(cube).iter_specified() {
            let expr = self.table.cell_expr(position, cell);
            if solver.insert(&expr, bit) == SolveOutcome::Conflict {
                solver.rollback(cp);
                return None;
            }
        }
        let added = solver.rank() - before;
        solver.rollback(cp);
        Some(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ss_gf2::primitive_poly;
    use ss_lfsr::{Lfsr, PhaseShifter};
    use ss_testdata::{generate_test_set, CubeProfile, ScanConfig};

    fn build_table(n: usize, scan: ScanConfig, window: usize, seed: u64) -> ExprTable {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lfsr = Lfsr::fibonacci(primitive_poly(n).unwrap());
        let shifter = PhaseShifter::synthesize(n, scan.chains(), 3, &mut rng).unwrap();
        ExprTable::build(&lfsr, &shifter, scan, window)
    }

    fn mini_setup(window: usize) -> (ss_testdata::TestSet, ExprTable) {
        let profile = CubeProfile::mini();
        let set = generate_test_set(&profile, 5);
        let table = build_table(profile.lfsr_size, set.config(), window, 2);
        (set, table)
    }

    #[test]
    fn encodes_every_cube_exactly_once() {
        let (set, table) = mini_setup(20);
        let result = WindowEncoder::new(&set, &table).unwrap().encode(1).unwrap();
        let mut seen = vec![0usize; set.len()];
        for seed in &result.seeds {
            assert!(!seed.placements.is_empty());
            assert_eq!(seed.placements[0].position, 0, "first cube at window start");
            for p in &seed.placements {
                seen[p.cube] += 1;
                assert!(p.position < table.window());
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every cube placed exactly once"
        );
        assert_eq!(result.encoded_cubes, set.len());
        assert_eq!(result.tdv(), result.seeds.len() * 16);
        assert_eq!(result.tsl_original(), result.seeds.len() * 20);
    }

    #[test]
    fn placements_are_really_embedded_in_expanded_windows() {
        let (set, table) = mini_setup(16);
        let profile = CubeProfile::mini();
        let result = WindowEncoder::new(&set, &table).unwrap().encode(2).unwrap();

        // re-expand each seed concretely and check the placed cubes match
        let mut rng = SmallRng::seed_from_u64(2);
        let lfsr = Lfsr::fibonacci(primitive_poly(profile.lfsr_size).unwrap());
        let shifter =
            PhaseShifter::synthesize(profile.lfsr_size, set.config().chains(), 3, &mut rng)
                .unwrap();
        for enc in &result.seeds {
            let vectors =
                crate::pipeline::try_expand_seed(&lfsr, &shifter, set.config(), &enc.seed, 16)
                    .unwrap();
            for p in &enc.placements {
                assert!(
                    set.cube(p.cube).matches(&vectors[p.position]),
                    "cube {} not embedded at claimed position {}",
                    p.cube,
                    p.position
                );
            }
        }
    }

    #[test]
    fn larger_windows_never_need_more_seeds() {
        let (set, table_small) = mini_setup(4);
        let profile = CubeProfile::mini();
        let table_large = {
            // same LFSR/shifter seeds as mini_setup for comparability
            build_table(profile.lfsr_size, set.config(), 40, 2)
        };
        let small = WindowEncoder::new(&set, &table_small)
            .unwrap()
            .encode(3)
            .unwrap();
        let large = WindowEncoder::new(&set, &table_large)
            .unwrap()
            .encode(3)
            .unwrap();
        assert!(
            large.seeds.len() <= small.seeds.len(),
            "L=40 used {} seeds, L=4 used {}",
            large.seeds.len(),
            small.seeds.len()
        );
    }

    #[test]
    fn window_one_degenerates_to_classical_reseeding() {
        let (set, _) = mini_setup(4);
        let profile = CubeProfile::mini();
        let table = build_table(profile.lfsr_size, set.config(), 1, 2);
        let result = WindowEncoder::new(&set, &table).unwrap().encode(4).unwrap();
        for seed in &result.seeds {
            for p in &seed.placements {
                assert_eq!(p.position, 0, "L=1 has a single position");
            }
        }
        assert_eq!(result.tsl_original(), result.seeds.len());
    }

    #[test]
    fn too_small_lfsr_reports_unencodable() {
        let profile = CubeProfile::mini(); // smax = 12
        let set = generate_test_set(&profile, 5);
        let table = build_table(8, set.config(), 4, 11); // 8-bit LFSR < smax
        let err = WindowEncoder::new(&set, &table)
            .unwrap()
            .encode(5)
            .unwrap_err();
        assert!(matches!(
            err,
            EncodeError::CubeUnencodable { lfsr_size: 8, .. }
        ));
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let profile = CubeProfile::mini();
        let set = generate_test_set(&profile, 5);
        let other_scan = ScanConfig::new(4, 16).unwrap();
        let table = build_table(profile.lfsr_size, other_scan, 4, 11);
        assert_eq!(
            WindowEncoder::new(&set, &table).unwrap_err(),
            EncodeError::GeometryMismatch
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let (set, table) = mini_setup(12);
        let enc = WindowEncoder::new(&set, &table).unwrap();
        assert_eq!(enc.encode(9).unwrap(), enc.encode(9).unwrap());
    }
}
