//! Multi-core SoC decompressor sharing (the paper's Section 4 case
//! study).
//!
//! In a SoC, the LFSR, State Skip circuit, phase shifter and counters
//! are implemented **once** and reused for every core; only the Mode
//! Select unit (whose truth table encodes a specific core's useful
//! segments) is replicated. [`SocPlan`] aggregates per-core pipeline
//! results into that area accounting.

use ss_lfsr::CostModel;
use ss_testdata::TestSet;

use crate::builder::Engine;
use crate::error::SchemeError;
use crate::pipeline::PipelineReport;

/// One core's contribution to the SoC plan.
#[derive(Debug, Clone)]
pub struct SocCore {
    /// Core name (e.g. `"s13207"`).
    pub name: String,
    /// LFSR size this core's encoding used.
    pub lfsr_size: usize,
    /// Seeds stored for this core.
    pub seeds: usize,
    /// Test data volume in bits.
    pub tdv: usize,
    /// Proposed (State Skip) test sequence length.
    pub tsl: u64,
    /// Mode Select gate equivalents (per-core hardware).
    pub mode_select_ge: f64,
    /// Shared-block gate equivalents this core would need alone.
    pub shared_ge: f64,
    /// State Skip circuit gate equivalents this core would need alone.
    pub skip_ge: f64,
}

/// The SoC-level aggregation: shared blocks sized for the largest
/// core, Mode Select replicated per core.
#[derive(Debug, Clone, Default)]
pub struct SocPlan {
    cores: Vec<SocCore>,
}

impl SocPlan {
    /// An empty plan.
    pub fn new() -> Self {
        SocPlan::default()
    }

    /// Runs the full State Skip flow for every core **in parallel**
    /// (a [`std::thread::scope`] worker pool capped at the engine's
    /// [`threads`](Engine::threads) budget) under one shared engine
    /// configuration, and aggregates the reports into a plan — the
    /// paper's Section 4 five-core experiment as one call.
    ///
    /// Cores are `(name, test set)` pairs; reports are aggregated in
    /// input order, so the plan is deterministic regardless of thread
    /// scheduling.
    ///
    /// # Errors
    ///
    /// The first per-core [`SchemeError`] in input order. Panics in
    /// core threads are propagated.
    pub fn run_batch(engine: &Engine, cores: &[(String, TestSet)]) -> Result<SocPlan, SchemeError> {
        let reports: Vec<Result<PipelineReport, SchemeError>> =
            crate::builder::run_pool(engine.threads(), cores.len(), |i| engine.run(&cores[i].1));
        let mut plan = SocPlan::new();
        for ((name, _), report) in cores.iter().zip(reports) {
            plan.add_core(name.clone(), &report?);
        }
        Ok(plan)
    }

    /// Adds a core from its pipeline report.
    pub fn add_core(&mut self, name: impl Into<String>, report: &PipelineReport) {
        self.cores.push(SocCore {
            name: name.into(),
            lfsr_size: report.lfsr_size,
            seeds: report.seeds,
            tdv: report.tdv,
            tsl: report.tsl_proposed,
            mode_select_ge: report.cost.mode_select_ge(),
            shared_ge: report.cost.shared_ge(),
            skip_ge: report.cost.skip_ge(),
        });
    }

    /// The cores added so far.
    pub fn cores(&self) -> &[SocCore] {
        &self.cores
    }

    /// GE of the shared blocks: the maximum over cores (the shared
    /// LFSR must be as large as the largest core requires).
    pub fn shared_ge(&self) -> f64 {
        self.cores.iter().map(|c| c.shared_ge).fold(0.0, f64::max)
    }

    /// GE of the shared State Skip circuit (again sized by the largest
    /// core's LFSR).
    pub fn skip_ge(&self) -> f64 {
        self.cores.iter().map(|c| c.skip_ge).fold(0.0, f64::max)
    }

    /// Total per-core Mode Select GE.
    pub fn mode_select_total_ge(&self) -> f64 {
        self.cores.iter().map(|c| c.mode_select_ge).sum()
    }

    /// Range of per-core Mode Select GE, `(min, max)`; zeros when no
    /// cores were added.
    pub fn mode_select_range(&self) -> (f64, f64) {
        let min = self
            .cores
            .iter()
            .map(|c| c.mode_select_ge)
            .fold(f64::MAX, f64::min);
        let max = self
            .cores
            .iter()
            .map(|c| c.mode_select_ge)
            .fold(0.0, f64::max);
        if self.cores.is_empty() {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }

    /// Total decompressor GE for the whole SoC: shared blocks + shared
    /// skip circuit + all Mode Select units.
    pub fn total_ge(&self) -> f64 {
        self.shared_ge() + self.skip_ge() + self.mode_select_total_ge()
    }

    /// Naive (no-sharing) total: every core gets its own full
    /// decompressor. The gap to [`total_ge`](SocPlan::total_ge) is the
    /// benefit the paper's reuse argument claims.
    pub fn unshared_ge(&self) -> f64 {
        self.cores
            .iter()
            .map(|c| c.shared_ge + c.skip_ge + c.mode_select_ge)
            .sum()
    }

    /// The decompressor's share of the total SoC area, given the cores'
    /// own gate-equivalent areas (the paper reports 6.6% for its
    /// five-core SoC).
    pub fn area_fraction(&self, core_area_ge: f64) -> f64 {
        let dec = self.total_ge();
        if core_area_ge + dec == 0.0 {
            0.0
        } else {
            dec / (core_area_ge + dec)
        }
    }

    /// Total test data volume of the SoC (all cores' seeds).
    pub fn total_tdv(&self) -> usize {
        self.cores.iter().map(|c| c.tdv).sum()
    }

    /// Total test sequence length when cores are tested one after the
    /// other.
    pub fn total_tsl(&self) -> u64 {
        self.cores.iter().map(|c| c.tsl).sum()
    }
}

/// GE of a set of `CostModel`-weighted scan cells — a crude stand-in
/// for "SoC core area" when only the netlist's scan count is known.
/// Each scan cell is one flip-flop plus ~8 gates of logic (typical
/// logic-per-FF ratios in the ISCAS'89 era).
pub fn estimated_core_area_ge(scan_cells: usize) -> f64 {
    let model = CostModel::default();
    scan_cells as f64 * (model.dff + 8.0 * model.nand2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use ss_testdata::{generate_test_set, CubeProfile};

    fn tiny_report() -> PipelineReport {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        Pipeline::new(
            &set,
            PipelineConfig {
                window: 12,
                segment: 3,
                speedup: 4,
                ..PipelineConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap()
    }

    #[test]
    fn sharing_beats_replication() {
        let report = tiny_report();
        let mut plan = SocPlan::new();
        for name in ["core-a", "core-b", "core-c"] {
            plan.add_core(name, &report);
        }
        assert_eq!(plan.cores().len(), 3);
        assert!(plan.total_ge() < plan.unshared_ge());
        // shared part counted once
        assert!((plan.shared_ge() - report.cost.shared_ge()).abs() < 1e-9);
        // mode select counted three times
        assert!((plan.mode_select_total_ge() - 3.0 * report.cost.mode_select_ge()).abs() < 1e-9);
    }

    #[test]
    fn totals_accumulate() {
        let report = tiny_report();
        let mut plan = SocPlan::new();
        plan.add_core("a", &report);
        plan.add_core("b", &report);
        assert_eq!(plan.total_tdv(), 2 * report.tdv);
        assert_eq!(plan.total_tsl(), 2 * report.tsl_proposed);
        let (lo, hi) = plan.mode_select_range();
        assert_eq!(lo, hi);
    }

    #[test]
    fn area_fraction_behaviour() {
        let report = tiny_report();
        let mut plan = SocPlan::new();
        plan.add_core("a", &report);
        let frac_small_soc = plan.area_fraction(1000.0);
        let frac_big_soc = plan.area_fraction(100_000.0);
        assert!(frac_small_soc > frac_big_soc);
        assert!(frac_big_soc > 0.0 && frac_big_soc < 0.05);
        assert_eq!(SocPlan::new().area_fraction(0.0), 0.0);
    }

    #[test]
    fn estimated_core_area_scales() {
        assert!(estimated_core_area_ge(1400) > estimated_core_area_ge(700));
        assert_eq!(estimated_core_area_ge(0), 0.0);
    }

    #[test]
    fn run_batch_matches_sequential_runs() {
        let engine = Engine::builder()
            .window(12)
            .segment(3)
            .speedup(4)
            .build()
            .unwrap();
        let cores: Vec<(String, TestSet)> = [3u64, 4]
            .iter()
            .map(|&seed| {
                (
                    format!("core-{seed}"),
                    generate_test_set(&CubeProfile::mini(), seed),
                )
            })
            .collect();
        let plan = SocPlan::run_batch(&engine, &cores).unwrap();
        assert_eq!(plan.cores().len(), 2);
        let mut reference = SocPlan::new();
        for (name, set) in &cores {
            reference.add_core(name.clone(), &engine.run(set).unwrap());
        }
        assert_eq!(plan.total_tdv(), reference.total_tdv());
        assert_eq!(plan.total_tsl(), reference.total_tsl());
        for (a, b) in plan.cores().iter().zip(reference.cores()) {
            assert_eq!(a.name, b.name, "input order is preserved");
            assert_eq!(a.tsl, b.tsl);
        }
    }

    #[test]
    fn run_batch_surfaces_the_first_error() {
        let engine = Engine::builder().window(8).segment(2).build().unwrap();
        let empty = TestSet::new(ss_testdata::ScanConfig::new(2, 4).unwrap());
        let cores = vec![("empty".to_string(), empty)];
        assert!(matches!(
            SocPlan::run_batch(&engine, &cores),
            Err(SchemeError::BadConfig(_))
        ));
    }
}
