//! Precomputed phase-shifter output expressions for a whole window.
//!
//! Seed encoding forms one linear equation per specified cube bit; the
//! left-hand side is the expression of a phase-shifter output at a
//! particular clock cycle. Those expressions depend only on the LFSR,
//! the phase shifter and the cycle — not on the solver state — so they
//! are computed once per `(LFSR, shifter, L)` configuration and shared
//! by every seed. Rows are stored in one flat word array to keep the
//! table cache-friendly (an s38417-sized table is ~13 MB).

use ss_gf2::{BitMatrix, BitVec};
use ss_lfsr::{ExpressionStream, Lfsr, PhaseShifter};
use ss_testdata::ScanConfig;

/// The expression table: for each cycle `t < L*r` and chain `c`, the
/// GF(2) row `ps_c * T^t` over the seed variables.
///
/// # Example
///
/// ```
/// use ss_core::ExprTable;
/// use ss_gf2::primitive_poly;
/// use ss_lfsr::{Lfsr, PhaseShifter};
/// use ss_testdata::ScanConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lfsr = Lfsr::fibonacci(primitive_poly(8)?);
/// let shifter = PhaseShifter::identity(8);
/// let scan = ScanConfig::new(8, 4)?;
/// let table = ExprTable::build(&lfsr, &shifter, scan, 3);
/// assert_eq!(table.cycles(), 12);
/// // cycle 0: cell expressions are the unit vectors
/// assert_eq!(table.expr(0, 5), ss_gf2::BitVec::unit(8, 5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExprTable {
    words: Vec<u64>,
    stride: usize,
    vars: usize,
    chains: usize,
    cycles: usize,
    scan: ScanConfig,
    window: usize,
    /// The LFSR's transition matrix `T` (`state(t+1) = T * state(t)`):
    /// row `t+1` of the table is row `t` advanced by `T`, which lets
    /// derived per-round tables (the encoder's projected expressions)
    /// be *streamed* cycle by cycle instead of recomputed per row.
    transition: BitMatrix,
}

impl ExprTable {
    /// Builds the table for `window` vectors of scan geometry `scan`.
    ///
    /// # Panics
    ///
    /// Panics if the shifter's output count differs from the scan
    /// chain count, or its input count from the LFSR size.
    pub fn build(lfsr: &Lfsr, shifter: &PhaseShifter, scan: ScanConfig, window: usize) -> Self {
        assert_eq!(
            shifter.output_count(),
            scan.chains(),
            "phase shifter outputs must match scan chains"
        );
        assert_eq!(
            shifter.input_count(),
            lfsr.size(),
            "phase shifter inputs must match LFSR size"
        );
        let vars = lfsr.size();
        let stride = vars.div_ceil(64);
        let chains = scan.chains();
        let cycles = window * scan.depth();
        let mut words = vec![0u64; cycles * chains * stride];
        let mut stream = ExpressionStream::new(lfsr);
        for t in 0..cycles {
            for c in 0..chains {
                let expr = stream.output_expr(shifter, c);
                let base = (t * chains + c) * stride;
                words[base..base + stride].copy_from_slice(expr.as_words());
            }
            stream.step();
        }
        ExprTable {
            words,
            stride,
            vars,
            chains,
            cycles,
            scan,
            window,
            transition: lfsr.transition_matrix(),
        }
    }

    /// The LFSR transition matrix `T` the table was built from
    /// (`expr(t+1, c) = expr(t, c) * T`, i.e. `state(t+1) = T *
    /// state(t)`).
    pub fn transition(&self) -> &BitMatrix {
        &self.transition
    }

    /// Number of scan chains (rows per cycle).
    pub fn chains(&self) -> usize {
        self.chains
    }

    /// Flat row index of the expression feeding scan cell `cell` of
    /// the vector at window position `position` — the same row
    /// [`cell_expr_words`](Self::cell_expr_words) returns, as an index
    /// `cycle * chains() + chain` into any per-row side table. Equal
    /// to `position * rows_per_position() + row_offset(cell)`, which
    /// is how hot loops amortise the scan-geometry arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `position >= window()` or `cell` is outside the scan
    /// geometry.
    pub fn row_index(&self, position: usize, cell: usize) -> usize {
        assert!(position < self.window, "window position out of range");
        position * self.rows_per_position() + self.row_offset(cell)
    }

    /// Table rows per window position (`depth * chains`).
    pub fn rows_per_position(&self) -> usize {
        self.scan.depth() * self.chains
    }

    /// The position-independent part of [`row_index`](Self::row_index)
    /// for `cell`: precompute once per cube, add
    /// `position * rows_per_position()` per probe.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the scan geometry.
    pub fn row_offset(&self, cell: usize) -> usize {
        let (chain, pos) = self.scan.chain_of(cell);
        self.scan.load_cycle(pos) * self.chains + chain
    }

    /// Raw words of table row `index` (as produced by
    /// [`row_index`](Self::row_index)).
    ///
    /// # Panics
    ///
    /// Panics if `index >= cycles() * chains()`.
    pub fn row_words(&self, index: usize) -> &[u64] {
        assert!(index < self.cycles * self.chains, "row index out of range");
        &self.words[index * self.stride..(index + 1) * self.stride]
    }

    /// Number of seed variables (LFSR size).
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Window length `L` the table covers.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total cycles (`L * r`).
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The scan geometry.
    pub fn scan(&self) -> ScanConfig {
        self.scan
    }

    /// Raw words of the expression for `(cycle, chain)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn expr_words(&self, cycle: usize, chain: usize) -> &[u64] {
        assert!(cycle < self.cycles, "cycle {cycle} out of range");
        assert!(chain < self.chains, "chain {chain} out of range");
        let base = (cycle * self.chains + chain) * self.stride;
        &self.words[base..base + self.stride]
    }

    /// The expression for `(cycle, chain)` as a [`BitVec`].
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn expr(&self, cycle: usize, chain: usize) -> BitVec {
        BitVec::from_words(self.vars, self.expr_words(cycle, chain))
    }

    /// Words per expression row (`vars()` rounded up to whole `u64`s) —
    /// the slice length of [`expr_words`](Self::expr_words) /
    /// [`cell_expr_words`](Self::cell_expr_words) rows.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The expression feeding scan *cell* `cell` of the vector at
    /// window position `position`: chain `c` of the cell, at the cycle
    /// within the load where that position is shifted in.
    ///
    /// # Panics
    ///
    /// Panics if `position >= window()` or `cell` is outside the scan
    /// geometry.
    pub fn cell_expr(&self, position: usize, cell: usize) -> BitVec {
        BitVec::from_words(self.vars, self.cell_expr_words(position, cell))
    }

    /// Raw words of [`cell_expr`](Self::cell_expr), borrowed straight
    /// from the table — the allocation-free row the solver's
    /// word-slice API ([`IncrementalSolver::insert_words`]
    /// [`probe_words`]) consumes directly.
    ///
    /// [`IncrementalSolver::insert_words`]: ss_gf2::IncrementalSolver::insert_words
    /// [`probe_words`]: ss_gf2::IncrementalSolver::probe_words
    ///
    /// # Panics
    ///
    /// Panics if `position >= window()` or `cell` is outside the scan
    /// geometry.
    pub fn cell_expr_words(&self, position: usize, cell: usize) -> &[u64] {
        assert!(position < self.window, "window position out of range");
        let (chain, pos) = self.scan.chain_of(cell);
        let cycle = position * self.scan.depth() + self.scan.load_cycle(pos);
        self.expr_words(cycle, chain)
    }

    /// Evaluates the whole window for a concrete seed: the `L` test
    /// vectors the decompressor would generate in Normal mode.
    /// Identical to [`try_expand_seed`](crate::try_expand_seed) but
    /// computed from the table (used by the encoder's fast path once a
    /// seed is fully determined).
    ///
    /// # Panics
    ///
    /// Panics if `seed.len() != vars()`.
    pub fn expand(&self, seed: &BitVec) -> Vec<BitVec> {
        assert_eq!(seed.len(), self.vars, "seed width mismatch");
        let r = self.scan.depth();
        let chains = self.chains;
        let mut vectors = Vec::with_capacity(self.window);
        for position in 0..self.window {
            let mut vector = BitVec::zeros(self.scan.cells());
            for t in 0..r {
                let cycle = position * r + t;
                let pos = self.scan.position_loaded_at(t);
                for c in 0..chains {
                    let words = self.expr_words(cycle, c);
                    let mut acc = 0u64;
                    for (w, s) in words.iter().zip(seed.as_words()) {
                        acc ^= w & s;
                    }
                    if acc.count_ones() % 2 == 1 {
                        vector.set(self.scan.cell_index(c, pos), true);
                    }
                }
            }
            vectors.push(vector);
        }
        vectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ss_gf2::primitive_poly;

    fn setup() -> (Lfsr, PhaseShifter, ScanConfig) {
        let mut rng = SmallRng::seed_from_u64(77);
        let lfsr = Lfsr::fibonacci(primitive_poly(10).unwrap());
        let shifter = PhaseShifter::synthesize(10, 4, 3, &mut rng).unwrap();
        let scan = ScanConfig::new(4, 6).unwrap();
        (lfsr, shifter, scan)
    }

    #[test]
    fn dimensions() {
        let (lfsr, shifter, scan) = setup();
        let table = ExprTable::build(&lfsr, &shifter, scan, 5);
        assert_eq!(table.vars(), 10);
        assert_eq!(table.window(), 5);
        assert_eq!(table.cycles(), 30);
    }

    #[test]
    fn expressions_predict_concrete_outputs() {
        let (mut lfsr, shifter, scan) = setup();
        let table = ExprTable::build(&lfsr, &shifter, scan, 4);
        let mut rng = SmallRng::seed_from_u64(3);
        let seed = BitVec::random(10, &mut rng);
        lfsr.load(&seed);
        for t in 0..table.cycles() {
            let outs = shifter.outputs(lfsr.state());
            for c in 0..4 {
                assert_eq!(
                    table.expr(t, c).dot(&seed),
                    outs.get(c),
                    "cycle {t} chain {c}"
                );
            }
            lfsr.step();
        }
    }

    #[test]
    fn cell_expr_respects_scan_mapping() {
        let (mut lfsr, shifter, scan) = setup();
        let table = ExprTable::build(&lfsr, &shifter, scan, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let seed = BitVec::random(10, &mut rng);

        // simulate the load of window position 1 concretely
        lfsr.load(&seed);
        let r = scan.depth();
        // skip position 0's load
        for _ in 0..r {
            lfsr.step();
        }
        // load position 1: r cycles shifting into chains
        let mut chains: Vec<Vec<bool>> = vec![Vec::new(); scan.chains()];
        for _ in 0..r {
            let outs = shifter.outputs(lfsr.state());
            for (c, chain) in chains.iter_mut().enumerate() {
                chain.push(outs.get(c));
            }
            lfsr.step();
        }
        // chain content: bit shifted at cycle t lands at position r-1-t
        for cell in 0..scan.cells() {
            let (chain, pos) = scan.chain_of(cell);
            let concrete = chains[chain][scan.load_cycle(pos)];
            assert_eq!(
                table.cell_expr(1, cell).dot(&seed),
                concrete,
                "cell {cell} (chain {chain}, pos {pos})"
            );
        }
    }

    #[test]
    fn cell_expr_words_borrows_the_same_row() {
        let (lfsr, shifter, scan) = setup();
        let table = ExprTable::build(&lfsr, &shifter, scan, 3);
        assert_eq!(table.stride(), 1);
        for position in 0..3 {
            for cell in 0..scan.cells() {
                assert_eq!(
                    BitVec::from_words(table.vars(), table.cell_expr_words(position, cell)),
                    table.cell_expr(position, cell),
                    "position {position} cell {cell}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cycle_panics() {
        let (lfsr, shifter, scan) = setup();
        let table = ExprTable::build(&lfsr, &shifter, scan, 2);
        let _ = table.expr(12, 0);
    }
}
