//! Typed intermediate artifacts of the staged [`Engine`] flow.
//!
//! Each stage owns everything the next one needs, so a caller can run
//! exactly as far as it wants, inspect the intermediate state, and
//! continue (or stop) without recomputation:
//!
//! ```text
//! Engine::encode  ->  Encoded      (seeds, TDV)
//! Encoded::embed  ->  Embedded     (+ fortuitous embedding map)
//! Embedded::segment -> Segmented   (+ segment plan)
//! Segmented::tsl / finish          (TslReport / full PipelineReport)
//! ```
//!
//! [`Engine`]: crate::Engine

use std::borrow::Cow;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ss_gf2::{primitive_poly, IncrementalSolver, SolveOutcome};
use ss_lfsr::{Lfsr, PhaseShifter, SkipCircuit};
use ss_testdata::{ScanConfig, TestSet};

use crate::builder::{resolve_threads, EngineConfig};
use crate::cost::{DecompressorCost, DecompressorCostInputs};
use crate::embedding::EmbeddingMap;
use crate::encoder::{EncodingResult, WindowEncoder};
use crate::error::SchemeError;
use crate::expr_table::ExprTable;
use crate::modeselect::ModeSelect;
use crate::pipeline::PipelineReport;
use crate::segments::{SegmentPlan, TslReport};

/// The synthesised hardware a scheme runs against: LFSR, phase
/// shifter and the precomputed expression table, together with the
/// engine configuration that produced them.
///
/// One context can serve many schemes — [`Engine::run_all`]
/// synthesises it once and shares it across scheme threads.
///
/// [`Engine::run_all`]: crate::Engine::run_all
#[derive(Debug, Clone)]
pub struct HardwareCtx {
    config: EngineConfig,
    scan: ScanConfig,
    lfsr: Lfsr,
    shifter: PhaseShifter,
    table: ExprTable,
}

impl HardwareCtx {
    /// Synthesises the hardware for `set` under `config`: picks the
    /// LFSR size (`smax + 4` unless overridden), builds the LFSR and
    /// phase shifter, and precomputes the expression table for the
    /// configured window.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadConfig`] for an empty set or an LFSR below
    /// `smax`; synthesis errors from the polynomial table, LFSR or
    /// phase shifter layers otherwise.
    pub fn synthesize(set: &TestSet, config: &EngineConfig) -> Result<Self, SchemeError> {
        if set.is_empty() {
            return Err(SchemeError::bad_config("test set is empty"));
        }
        let n = config.lfsr_size.unwrap_or((set.smax() + 4).clamp(3, 168));
        if n < set.smax() {
            return Err(SchemeError::bad_config(format!(
                "LFSR size {n} is below smax {}",
                set.smax()
            )));
        }
        let poly = primitive_poly(n)?;
        let lfsr = Lfsr::try_new(poly, config.lfsr_kind)?;
        let mut rng = SmallRng::seed_from_u64(config.hw_seed);
        let shifter = PhaseShifter::synthesize(n, set.config().chains(), config.ps_taps, &mut rng)?;
        let table = ExprTable::build(&lfsr, &shifter, set.config(), config.window);
        Ok(HardwareCtx {
            config: *config,
            scan: set.config(),
            lfsr,
            shifter,
            table,
        })
    }

    /// Reassembles a context from already-synthesised parts — the
    /// rehydration path of the persistent artifact store, where the
    /// LFSR, phase shifter and scan geometry come off disk and only
    /// the (deterministic, unserialised) expression table needs
    /// rebuilding.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadConfig`] when the parts disagree: the phase
    /// shifter must drive exactly `scan.chains()` outputs from exactly
    /// `lfsr.size()` LFSR bits, and `config.lfsr_size` (when pinned)
    /// must match the LFSR handed in.
    pub fn from_parts(
        config: EngineConfig,
        scan: ScanConfig,
        lfsr: Lfsr,
        shifter: PhaseShifter,
    ) -> Result<Self, SchemeError> {
        if shifter.input_count() != lfsr.size() {
            return Err(SchemeError::bad_config(format!(
                "phase shifter reads {} LFSR bits but the LFSR has {}",
                shifter.input_count(),
                lfsr.size()
            )));
        }
        if shifter.output_count() != scan.chains() {
            return Err(SchemeError::bad_config(format!(
                "phase shifter drives {} chains but the scan has {}",
                shifter.output_count(),
                scan.chains()
            )));
        }
        if let Some(n) = config.lfsr_size {
            if n != lfsr.size() {
                return Err(SchemeError::bad_config(format!(
                    "configuration pins a {n}-bit LFSR but the part has {} bits",
                    lfsr.size()
                )));
            }
        }
        let table = ExprTable::build(&lfsr, &shifter, scan, config.window);
        Ok(HardwareCtx {
            config,
            scan,
            lfsr,
            shifter,
            table,
        })
    }

    /// The engine configuration this hardware was synthesised for.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The scan geometry of the bound test set.
    pub fn scan(&self) -> ScanConfig {
        self.scan
    }

    /// The synthesised LFSR.
    pub fn lfsr(&self) -> &Lfsr {
        &self.lfsr
    }

    /// The synthesised phase shifter.
    pub fn shifter(&self) -> &PhaseShifter {
        &self.shifter
    }

    /// The precomputed expression table (window length
    /// `config().window`).
    pub fn table(&self) -> &ExprTable {
        &self.table
    }

    /// The LFSR size `n`.
    pub fn lfsr_size(&self) -> usize {
        self.lfsr.size()
    }

    /// Splits `set` into the cubes this hardware can encode and the
    /// indices of *intrinsically unencodable* cubes.
    ///
    /// A cube whose specified-bit expressions are linearly dependent
    /// with inconsistent values conflicts in an **empty** window — and
    /// because moving a cube from window position 0 to position `v`
    /// multiplies every expression by the invertible matrix `T^(v*r)`,
    /// such a conflict holds at *every* position: no seed can ever
    /// carry the cube. This is a property of the (LFSR, phase shifter,
    /// cube) triple; the paper's real test sets simply did not contain
    /// such cubes at the chosen LFSR sizes, and a DFT engineer hitting
    /// one would bump `n`. Benches use this filter to emulate the
    /// former; see `EXPERIMENTS.md`.
    pub fn encodable_subset(&self, set: &TestSet) -> (TestSet, Vec<usize>) {
        let mut keep = TestSet::new(set.config());
        let mut dropped = Vec::new();
        let mut solver = IncrementalSolver::new(self.table.vars());
        let empty = solver.checkpoint();
        for (ci, cube) in set.iter().enumerate() {
            solver.rollback(empty);
            let mut ok = true;
            for (cell, bit) in cube.iter_specified() {
                // borrowed word-slice path: the expression row is
                // consumed straight out of the table
                let expr = self.table.cell_expr_words(0, cell);
                if solver.insert_words(expr, bit) == SolveOutcome::Conflict {
                    ok = false;
                    break;
                }
            }
            if ok {
                keep.push(cube.clone()).expect("same geometry");
            } else {
                dropped.push(ci);
            }
        }
        (keep, dropped)
    }
}

/// Stage 1 output: the window-based seed encoding.
#[derive(Debug, Clone)]
pub struct Encoded<'a> {
    set: &'a TestSet,
    ctx: Cow<'a, HardwareCtx>,
    encoding: EncodingResult,
}

impl<'a> Encoded<'a> {
    /// Encodes `set` on an already-synthesised context, taking
    /// ownership of it.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Encode`] when a cube cannot be encoded.
    pub fn from_ctx(set: &'a TestSet, ctx: HardwareCtx) -> Result<Self, SchemeError> {
        let encoding = WindowEncoder::new(set, ctx.table())?.encode_with_threads(
            ctx.config().fill_seed,
            resolve_threads(ctx.config().threads),
        )?;
        Ok(Encoded {
            set,
            ctx: Cow::Owned(ctx),
            encoding,
        })
    }

    /// Encodes `set` on a borrowed context — no clone of the (large)
    /// expression table; the stages hold the reference instead.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Encode`] when a cube cannot be encoded.
    pub fn from_ctx_ref(set: &'a TestSet, ctx: &'a HardwareCtx) -> Result<Self, SchemeError> {
        let encoding = WindowEncoder::new(set, ctx.table())?.encode_with_threads(
            ctx.config().fill_seed,
            resolve_threads(ctx.config().threads),
        )?;
        Ok(Encoded {
            set,
            ctx: Cow::Borrowed(ctx),
            encoding,
        })
    }

    /// Re-enters the staged flow from an already-computed encoding —
    /// the cache-hit path of a serving layer: no synthesis, no encode,
    /// just the cheap later stages (embed → segment → finish).
    ///
    /// The caller asserts that `encoding` was produced by exactly this
    /// `(set, ctx)` pair (e.g. both were stored together under one
    /// content-addressed key, as `ss-server`'s artifact cache does);
    /// only the cheap structural invariants are re-checked here.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadConfig`] when the encoding's LFSR size or
    /// window disagrees with the context, or its cube count disagrees
    /// with the set — the signature of pairing artifacts from
    /// different runs.
    pub fn from_cached(
        set: &'a TestSet,
        ctx: &'a HardwareCtx,
        encoding: EncodingResult,
    ) -> Result<Self, SchemeError> {
        if encoding.lfsr_size != ctx.lfsr_size() {
            return Err(SchemeError::bad_config(format!(
                "cached encoding is for a {}-bit LFSR but the context has {} bits",
                encoding.lfsr_size,
                ctx.lfsr_size()
            )));
        }
        if encoding.window != ctx.config().window {
            return Err(SchemeError::bad_config(format!(
                "cached encoding used window {} but the context was built for {}",
                encoding.window,
                ctx.config().window
            )));
        }
        if encoding.encoded_cubes != set.len() {
            return Err(SchemeError::bad_config(format!(
                "cached encoding covers {} cubes but the set has {}",
                encoding.encoded_cubes,
                set.len()
            )));
        }
        if set.config() != ctx.scan() {
            return Err(SchemeError::bad_config(format!(
                "set has scan geometry {} but the context was synthesised for {}",
                set.config(),
                ctx.scan()
            )));
        }
        Ok(Encoded {
            set,
            ctx: Cow::Borrowed(ctx),
            encoding,
        })
    }

    /// The test set this artifact was computed from.
    pub fn set(&self) -> &'a TestSet {
        self.set
    }

    /// The hardware context.
    pub fn ctx(&self) -> &HardwareCtx {
        self.ctx.as_ref()
    }

    /// The raw encoding.
    pub fn encoding(&self) -> &EncodingResult {
        &self.encoding
    }

    /// Number of seeds.
    pub fn seed_count(&self) -> usize {
        self.encoding.seeds.len()
    }

    /// Test data volume in bits (`seeds * n`).
    pub fn tdv(&self) -> usize {
        self.encoding.tdv()
    }

    /// TSL of the plain window-based scheme (`seeds * L`).
    pub fn tsl_original(&self) -> u64 {
        self.encoding.tsl_original() as u64
    }

    /// Stage 2: detects fortuitous embeddings of every cube across all
    /// windows (parallel over seeds, honouring the engine's thread
    /// budget).
    pub fn embed(self) -> Embedded<'a> {
        let embedding = EmbeddingMap::build_threaded(
            self.set,
            &self.encoding,
            self.ctx.lfsr(),
            self.ctx.shifter(),
            resolve_threads(self.ctx.config().threads),
        );
        Embedded {
            set: self.set,
            ctx: self.ctx,
            encoding: self.encoding,
            embedding,
        }
    }
}

/// Stage 2 output: encoding plus the fortuitous-embedding map.
#[derive(Debug, Clone)]
pub struct Embedded<'a> {
    set: &'a TestSet,
    ctx: Cow<'a, HardwareCtx>,
    encoding: EncodingResult,
    embedding: EmbeddingMap,
}

impl<'a> Embedded<'a> {
    /// The hardware context.
    pub fn ctx(&self) -> &HardwareCtx {
        self.ctx.as_ref()
    }

    /// The raw encoding.
    pub fn encoding(&self) -> &EncodingResult {
        &self.encoding
    }

    /// All cube embeddings.
    pub fn embedding(&self) -> &EmbeddingMap {
        &self.embedding
    }

    /// Stage 3: cuts windows into segments of the configured size and
    /// selects the minimum useful set (Section 3.2 of the paper).
    pub fn segment(self) -> Segmented<'a> {
        let segment = self.ctx.config().segment;
        self.segment_with(segment)
    }

    /// Stage 3 with an explicit segment size — the hook for sweeps
    /// that re-plan one embedding at several granularities.
    pub fn segment_with(self, segment: usize) -> Segmented<'a> {
        let plan = SegmentPlan::build(&self.embedding, segment);
        Segmented {
            set: self.set,
            ctx: self.ctx,
            encoding: self.encoding,
            embedding: self.embedding,
            plan,
        }
    }
}

/// Stage 3 output: the segment plan, ready for TSL accounting and the
/// final report.
#[derive(Debug, Clone)]
pub struct Segmented<'a> {
    set: &'a TestSet,
    ctx: Cow<'a, HardwareCtx>,
    encoding: EncodingResult,
    embedding: EmbeddingMap,
    plan: SegmentPlan,
}

impl Segmented<'_> {
    /// The hardware context.
    pub fn ctx(&self) -> &HardwareCtx {
        self.ctx.as_ref()
    }

    /// The raw encoding.
    pub fn encoding(&self) -> &EncodingResult {
        &self.encoding
    }

    /// The segment plan.
    pub fn plan(&self) -> &SegmentPlan {
        &self.plan
    }

    /// Stage 4: State Skip traversal accounting at the configured
    /// speedup.
    pub fn tsl(&self) -> TslReport {
        self.tsl_with(self.ctx.config().speedup)
    }

    /// Stage 4 with an explicit speedup factor — the hook for sweeps.
    pub fn tsl_with(&self, speedup: u64) -> TslReport {
        self.plan.tsl(speedup, self.set.config().depth())
    }

    /// Finishes the flow: Mode Select synthesis, hardware cost
    /// estimation and the assembled [`PipelineReport`] (bit-identical
    /// to the legacy `Pipeline::run`).
    ///
    /// # Errors
    ///
    /// [`SchemeError::Skip`] if the State Skip circuit cannot be
    /// built for the configured speedup.
    pub fn finish(self) -> Result<PipelineReport, SchemeError> {
        let config = *self.ctx.config();
        let r = self.set.config().depth();
        let tsl_report = self.tsl();
        let mode_select = ModeSelect::from_plan(&self.plan);

        let skip = SkipCircuit::new(self.ctx.lfsr(), config.speedup)?;
        let skip_net = skip.synthesize();
        let cost = DecompressorCost::estimate(&DecompressorCostInputs {
            lfsr_size: self.ctx.lfsr_size(),
            poly_weight: self.ctx.lfsr().poly().weight(),
            ps_xor2: self.ctx.shifter().xor2_count(),
            skip_xor2: skip_net.gate_count(),
            scan_depth: r,
            segment: config.segment,
            window: config.window,
            group_count: self.plan.groups().len(),
            max_group_size: self
                .plan
                .groups()
                .iter()
                .map(|(_, s)| s.len())
                .max()
                .unwrap_or(0),
            max_useful: self.plan.groups().last().map(|(c, _)| *c).unwrap_or(0),
            mode_select_terms: mode_select.term_count(),
        });

        let tsl_original = self.encoding.tsl_original() as u64;
        let tsl_proposed = tsl_report.vectors;
        Ok(PipelineReport {
            lfsr_size: self.ctx.lfsr_size(),
            window: config.window,
            segment: config.segment,
            speedup: config.speedup,
            seeds: self.encoding.seeds.len(),
            tdv: self.encoding.tdv(),
            tsl_original,
            tsl_truncated: self.plan.tsl_truncated_only(r).vectors,
            tsl_proposed,
            improvement_percent: crate::report::improvement_percent(tsl_original, tsl_proposed),
            encoding: self.encoding,
            embedding: self.embedding,
            plan: self.plan,
            tsl_report,
            mode_select,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Engine;
    use ss_testdata::{generate_test_set, CubeProfile};

    fn mini_engine() -> Engine {
        Engine::builder()
            .window(24)
            .segment(4)
            .speedup(6)
            .build()
            .unwrap()
    }

    #[test]
    fn context_is_reusable_across_stages_and_schemes() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let engine = mini_engine();
        let ctx = engine.synthesize(&set).unwrap();
        assert_eq!(ctx.lfsr_size(), set.smax() + 4);
        assert_eq!(ctx.table().window(), 24);
        let a = Encoded::from_ctx(&set, ctx.clone()).unwrap();
        let b = Encoded::from_ctx(&set, ctx).unwrap();
        assert_eq!(a.encoding(), b.encoding(), "same ctx, same encoding");
    }

    #[test]
    fn segment_and_speedup_hooks_support_sweeps() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let embedded = mini_engine().encode(&set).unwrap().embed();
        let coarse = embedded.clone().segment_with(12);
        let fine = embedded.segment_with(2);
        assert!(fine.tsl().vectors <= coarse.tsl().vectors);
        let segmented = mini_engine().encode(&set).unwrap().embed().segment();
        assert!(segmented.tsl_with(24).vectors <= segmented.tsl_with(2).vectors);
    }

    #[test]
    fn from_cached_reproduces_the_fresh_flow_and_validates_pairing() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let engine = mini_engine();
        let ctx = engine.synthesize(&set).unwrap();
        let fresh = Encoded::from_ctx_ref(&set, &ctx).unwrap();
        let encoding = fresh.encoding().clone();
        let fresh_report = fresh.embed().segment().finish().unwrap();

        // the cache-hit path: no re-encode, identical report
        let cached = Encoded::from_cached(&set, &ctx, encoding.clone()).unwrap();
        assert_eq!(cached.encoding(), &encoding);
        let cached_report = cached.embed().segment().finish().unwrap();
        assert_eq!(cached_report.encoding, fresh_report.encoding);
        assert_eq!(cached_report.tsl_proposed, fresh_report.tsl_proposed);
        assert_eq!(cached_report.tdv, fresh_report.tdv);

        // mismatched pairings are rejected (the structural checks:
        // cube count, scan geometry, window, LFSR size)
        let mut shorter = TestSet::new(set.config());
        for cube in set.iter().skip(1) {
            shorter.push(cube.clone()).unwrap();
        }
        assert!(matches!(
            Encoded::from_cached(&shorter, &ctx, encoding.clone()),
            Err(SchemeError::BadConfig(_))
        ));
        let other_geometry = generate_test_set(&CubeProfile::s13207(), 1);
        let mut wrong_scan = TestSet::new(other_geometry.config());
        for cube in other_geometry.iter().take(set.len()) {
            wrong_scan.push(cube.clone()).unwrap();
        }
        assert!(matches!(
            Encoded::from_cached(&wrong_scan, &ctx, encoding.clone()),
            Err(SchemeError::BadConfig(_))
        ));
        let wide = Engine::builder()
            .window(32)
            .segment(4)
            .speedup(6)
            .build()
            .unwrap();
        let wide_ctx = wide.synthesize(&set).unwrap();
        assert!(matches!(
            Encoded::from_cached(&set, &wide_ctx, encoding),
            Err(SchemeError::BadConfig(_))
        ));
    }

    #[test]
    fn unencodable_detection_matches_the_encoder() {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let ctx = mini_engine().synthesize(&set).unwrap();
        let (keep, dropped) = ctx.encodable_subset(&set);
        assert_eq!(keep.len() + dropped.len(), set.len());
        assert!(dropped.is_empty(), "calibrated defaults leave no drops");
    }
}
