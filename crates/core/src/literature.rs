//! Literature comparison data: the numbers the paper itself reports.
//!
//! Tables 3 and 4 of the paper compare against published methods whose
//! implementations are closed ([1], [17], [18], [21], [22], [23],
//! [29], [30], [34] and the embedding scheme [11]). In the original
//! paper those columns are *data copied from the cited papers*; this
//! module embeds the same data so the bench harness can print the
//! complete tables next to our reproduced columns. Everything here is
//! clearly labelled "paper-reported"; our own columns are always
//! measured.

/// One method's reported numbers for one circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LitMethod {
    /// Citation label as used by the paper (e.g. `"[17]"`).
    pub label: &'static str,
    /// Reported test sequence length, if the cited paper gave one.
    pub tsl: Option<u64>,
    /// Reported test data volume (bits), if given.
    pub tdv: Option<u64>,
}

/// A row of the paper's Table 4 (test data compression methods).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitTable4Row {
    /// Circuit name.
    pub circuit: &'static str,
    /// Reported (TSL, TDV) per method, including the paper's own
    /// Classical-reseeding and Proposed (L=200) columns.
    pub methods: Vec<LitMethod>,
}

/// The paper's Table 4: TSL and TDV of LFSR-reseeding-based methods
/// for IP cores with multiple scan chains.
pub fn lit_table4() -> Vec<LitTable4Row> {
    fn m(label: &'static str, tsl: Option<u64>, tdv: Option<u64>) -> LitMethod {
        LitMethod { label, tsl, tdv }
    }
    vec![
        LitTable4Row {
            circuit: "s9234",
            methods: vec![
                m("[1]", Some(170), Some(15092)),
                m("[17]", Some(205), Some(12445)),
                m("[21]", Some(205), Some(10302)),
                m("[34]", Some(205), None),
                m("[23]", Some(159), Some(30144)),
                m("[29]", Some(159), None),
                m("[18]", None, None),
                m("[30]", Some(161), Some(17198)),
                m("classical L=1 (paper)", Some(243), Some(10692)),
                m("proposed L=200 (paper)", Some(1784), Some(7128)),
            ],
        },
        LitTable4Row {
            circuit: "s13207",
            methods: vec![
                m("[1]", Some(229), Some(12798)),
                m("[17]", Some(266), Some(11859)),
                m("[21]", Some(266), Some(10484)),
                m("[34]", Some(266), Some(10810)),
                m("[23]", Some(236), Some(20988)),
                m("[29]", Some(236), Some(74423)),
                m("[18]", Some(266), Some(14307)),
                m("[30]", Some(242), Some(26004)),
                m("classical L=1 (paper)", Some(369), Some(8856)),
                m("proposed L=200 (paper)", Some(1756), Some(3816)),
            ],
        },
        LitTable4Row {
            circuit: "s15850",
            methods: vec![
                m("[1]", Some(244), Some(15480)),
                m("[17]", Some(269), Some(12663)),
                m("[21]", Some(269), Some(11411)),
                m("[34]", Some(269), Some(12405)),
                m("[23]", Some(126), Some(25140)),
                m("[29]", Some(126), Some(26021)),
                m("[18]", Some(226), Some(15067)),
                m("[30]", Some(306), Some(32226)),
                m("classical L=1 (paper)", Some(298), Some(11622)),
                m("proposed L=200 (paper)", Some(1740), Some(6669)),
            ],
        },
        LitTable4Row {
            circuit: "s38417",
            methods: vec![
                m("[1]", Some(376), Some(37020)),
                m("[17]", Some(376), Some(36430)),
                m("[21]", Some(376), Some(32152)),
                m("[34]", Some(376), Some(32154)),
                m("[23]", Some(99), Some(85225)),
                m("[29]", Some(99), Some(45003)),
                m("[18]", Some(376), Some(49001)),
                m("[30]", Some(854), Some(89132)),
                m("classical L=1 (paper)", Some(685), Some(58225)),
                m("proposed L=200 (paper)", Some(13113), Some(48110)),
            ],
        },
        LitTable4Row {
            circuit: "s38584",
            methods: vec![
                m("[1]", Some(296), Some(31574)),
                m("[17]", Some(296), Some(30355)),
                m("[21]", Some(296), Some(31152)),
                m("[34]", Some(296), Some(31000)),
                m("[23]", Some(136), Some(57120)),
                m("[29]", Some(136), Some(73464)),
                m("[18]", Some(296), Some(28994)),
                m("[30]", Some(599), Some(63232)),
                m("classical L=1 (paper)", Some(405), Some(22680)),
                m("proposed L=200 (paper)", Some(6639), Some(7056)),
            ],
        },
    ]
}

/// A row of the paper's Table 3 (test set embedding methods, L=300).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LitEmbeddingRow {
    /// Circuit name.
    pub circuit: &'static str,
    /// TDV of \[11\] (Kaseridis et al.).
    pub tdv_11: u64,
    /// TDV of \[22\] (Li & Chakrabarty reconfigurable network).
    pub tdv_22: u64,
    /// TDV of the proposed method (paper-reported).
    pub tdv_prop: u64,
    /// TSL of \[11\].
    pub tsl_11: u64,
    /// TSL of \[22\].
    pub tsl_22: u64,
    /// TSL of the proposed method (paper-reported).
    pub tsl_prop: u64,
    /// Paper-reported TSL improvement vs \[11\], percent.
    pub impr_11: f64,
    /// Paper-reported TSL improvement vs \[22\], percent.
    pub impr_22: f64,
}

/// The paper's Table 3.
pub fn lit_table3() -> Vec<LitEmbeddingRow> {
    vec![
        LitEmbeddingRow {
            circuit: "s9234",
            tdv_11: 7020,
            tdv_22: 648,
            tdv_prop: 6864,
            tsl_11: 24592,
            tsl_22: 135765,
            tsl_prop: 2163,
            impr_11: 91.2,
            impr_22: 98.4,
        },
        LitEmbeddingRow {
            circuit: "s13207",
            tdv_11: 3475,
            tdv_22: 162,
            tdv_prop: 3336,
            tsl_11: 24724,
            tsl_22: 152596,
            tsl_prop: 2072,
            impr_11: 91.6,
            impr_22: 98.6,
        },
        LitEmbeddingRow {
            circuit: "s15850",
            tdv_11: 6520,
            tdv_22: 396,
            tdv_prop: 6357,
            tsl_11: 27630,
            tsl_22: 222336,
            tsl_prop: 2138,
            impr_11: 92.3,
            impr_22: 99.0,
        },
        LitEmbeddingRow {
            circuit: "s38417",
            tdv_11: 48418,
            tdv_22: 5440,
            tdv_prop: 47855,
            tsl_11: 85885,
            tsl_22: 625273,
            tsl_prop: 18512,
            impr_11: 78.4,
            impr_22: 97.0,
        },
        LitEmbeddingRow {
            circuit: "s38584",
            tdv_11: 6384,
            tdv_22: 228,
            tdv_prop: 6272,
            tsl_11: 29358,
            tsl_22: 383009,
            tsl_prop: 7489,
            impr_11: 74.5,
            impr_22: 98.0,
        },
    ]
}

/// One circuit row of the paper's Table 1: `(circuit, lfsr_size,
/// [(L, tdv, tsl); 4])` where the four entries are L = 1, 50, 200, 500.
pub type Table1Row = (&'static str, usize, [(usize, u64, u64); 4]);

/// One circuit row of the paper's Table 2:
/// `(circuit, [(L, orig_tsl, prop_tsl, impr%); 3])` for L = 50, 200,
/// 500 (best S in {2,5,10}, 5 <= k <= 24).
pub type Table2Row = (&'static str, [(usize, u64, u64, u64); 3]);

/// The paper's Table 1 (classical vs window-based reseeding).
pub const PAPER_TABLE1: &[Table1Row] = &[
    (
        "s9234",
        44,
        [
            (1, 10692, 243),
            (50, 8008, 9100),
            (200, 7128, 32400),
            (500, 6688, 76000),
        ],
    ),
    (
        "s13207",
        24,
        [
            (1, 8856, 369),
            (50, 5328, 11100),
            (200, 3816, 31800),
            (500, 2688, 56000),
        ],
    ),
    (
        "s15850",
        39,
        [
            (1, 11622, 298),
            (50, 7410, 9500),
            (200, 6669, 34200),
            (500, 6201, 79500),
        ],
    ),
    (
        "s38417",
        85,
        [
            (1, 58225, 685),
            (50, 50660, 29800),
            (200, 48110, 113200),
            (500, 47005, 276500),
        ],
    ),
    (
        "s38584",
        56,
        [
            (1, 22680, 405),
            (50, 10584, 9450),
            (200, 7056, 25200),
            (500, 5152, 46000),
        ],
    ),
];

/// The paper's Table 2 (original vs proposed TSL).
pub const PAPER_TABLE2: &[Table2Row] = &[
    (
        "s9234",
        [
            (50, 9100, 1082, 88),
            (200, 32400, 1784, 94),
            (500, 76000, 3055, 96),
        ],
    ),
    (
        "s13207",
        [
            (50, 11100, 1309, 88),
            (200, 31800, 1756, 94),
            (500, 56000, 2701, 95),
        ],
    ),
    (
        "s15850",
        [
            (50, 9500, 1129, 88),
            (200, 34200, 1740, 95),
            (500, 79500, 2791, 96),
        ],
    ),
    (
        "s38417",
        [
            (50, 29800, 7626, 74),
            (200, 113200, 13113, 88),
            (500, 276500, 21865, 92),
        ],
    ),
    (
        "s38584",
        [
            (50, 9450, 3805, 60),
            (200, 25200, 6639, 74),
            (500, 46000, 9054, 80),
        ],
    ),
];

/// Alias kept for discoverability: Table 2's TSL triples.
pub const PAPER_TSL_TABLE2: &[Table2Row] = PAPER_TABLE2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_all_circuits_and_methods() {
        let t = lit_table4();
        assert_eq!(t.len(), 5);
        for row in &t {
            assert_eq!(row.methods.len(), 10, "{}", row.circuit);
            // the paper's own proposed column always has both numbers
            let prop = row.methods.last().unwrap();
            assert!(prop.tsl.is_some() && prop.tdv.is_some());
        }
    }

    #[test]
    fn table3_improvements_match_relation2() {
        // the printed improvements must be consistent with the TSLs
        for row in lit_table3() {
            let impr11 = (1.0 - row.tsl_prop as f64 / row.tsl_11 as f64) * 100.0;
            let impr22 = (1.0 - row.tsl_prop as f64 / row.tsl_22 as f64) * 100.0;
            assert!(
                (impr11 - row.impr_11).abs() < 0.3,
                "{}: {impr11} vs {}",
                row.circuit,
                row.impr_11
            );
            assert!(
                (impr22 - row.impr_22).abs() < 0.3,
                "{}: {impr22} vs {}",
                row.circuit,
                row.impr_22
            );
        }
    }

    #[test]
    fn table1_tsl_equals_seeds_times_window() {
        for &(circuit, n, entries) in PAPER_TABLE1 {
            for &(l, tdv, tsl) in &entries {
                // TDV = seeds * n  and  TSL = seeds * L must be consistent
                let seeds = tdv / n as u64;
                assert_eq!(seeds * l as u64, tsl, "{circuit} L={l}");
                assert_eq!(tdv % n as u64, 0, "{circuit} L={l}: TDV divisible by n");
            }
        }
    }

    #[test]
    fn table2_improvements_match_relation2() {
        for &(circuit, entries) in PAPER_TABLE2 {
            for &(l, orig, prop, impr) in &entries {
                let computed = ((1.0 - prop as f64 / orig as f64) * 100.0).round() as u64;
                assert_eq!(computed, impr, "{circuit} L={l}");
            }
        }
    }

    #[test]
    fn table1_and_table2_orig_columns_agree() {
        // Table 2's "Orig." TSLs are Table 1's window-based TSLs
        for (&(c1, _, t1), &(c2, t2)) in PAPER_TABLE1.iter().zip(PAPER_TABLE2) {
            assert_eq!(c1, c2);
            assert_eq!(t1[1].2, t2[0].1, "{c1} L=50");
            assert_eq!(t1[2].2, t2[1].1, "{c1} L=200");
            assert_eq!(t1[3].2, t2[2].1, "{c1} L=500");
        }
    }
}
