//! Multi-output XOR network synthesis with common-subexpression
//! extraction.
//!
//! A State Skip circuit is a dense linear map: for an n-bit LFSR and a
//! moderate `k`, each of the n outputs is the XOR of ~n/2 cells.
//! Implemented naively that costs O(n²/2) XOR gates — far more than the
//! 52–119 gate equivalents the paper reports for s13207. Synthesis
//! tools close that gap by sharing sub-XORs between outputs; this
//! module reproduces the effect with the classic greedy pair-extraction
//! heuristic (Paar's algorithm): repeatedly materialise the pair of
//! signals that co-occurs in the most outputs as a new gate.

use std::collections::HashMap;

use ss_gf2::BitMatrix;

/// One 2-input XOR gate in a synthesised [`XorNetwork`].
///
/// Signal numbering: `0..inputs` are the network inputs; gate `g`
/// produces signal `inputs + g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorGate {
    /// First input signal.
    pub a: usize,
    /// Second input signal.
    pub b: usize,
}

/// A synthesised multi-output XOR network.
///
/// # Example
///
/// ```
/// use ss_gf2::{BitMatrix, BitVec};
/// use ss_lfsr::XorNetwork;
///
/// // two outputs sharing the pair (0,1):
/// let m = BitMatrix::from_rows(vec![
///     BitVec::from_bits([true, true, true, false]),
///     BitVec::from_bits([true, true, false, true]),
/// ]);
/// let net = XorNetwork::synthesize(&m);
/// assert_eq!(net.gate_count(), 3); // t=0^1, o0=t^2, o1=t^3 (naive: 4)
/// let out = net.eval(&BitVec::from_bits([true, false, true, true]));
/// assert_eq!(out, m.mul_vec(&BitVec::from_bits([true, false, true, true])));
/// ```
#[derive(Debug, Clone)]
pub struct XorNetwork {
    inputs: usize,
    gates: Vec<XorGate>,
    /// For each output: `None` = constant 0, `Some(sig)` = that signal.
    outputs: Vec<Option<usize>>,
}

impl XorNetwork {
    /// Synthesises a network computing `matrix * input` (each row is
    /// one output's support set) using greedy pair sharing.
    pub fn synthesize(matrix: &BitMatrix) -> Self {
        let inputs = matrix.col_count();
        let mut rows: Vec<Vec<usize>> = matrix
            .iter_rows()
            .map(|r| r.iter_ones().collect())
            .collect();
        let mut gates: Vec<XorGate> = Vec::new();

        // Greedy CSE: extract the most frequent co-occurring pair.
        loop {
            let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
            for row in &rows {
                for i in 0..row.len() {
                    for j in i + 1..row.len() {
                        *counts.entry((row[i], row[j])).or_insert(0) += 1;
                    }
                }
            }
            let best = counts
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                // deterministic tie-break: highest count, then smallest pair
                .min_by_key(|&((a, b), c)| (usize::MAX - c, a, b));
            let Some(((a, b), _)) = best else { break };
            let new_sig = inputs + gates.len();
            gates.push(XorGate { a, b });
            for row in &mut rows {
                let has_a = row.binary_search(&a).is_ok();
                let has_b = row.binary_search(&b).is_ok();
                if has_a && has_b {
                    row.retain(|&s| s != a && s != b);
                    let pos = row.partition_point(|&s| s < new_sig);
                    row.insert(pos, new_sig);
                }
            }
        }

        // Reduce each remaining row with a balanced XOR tree.
        let mut outputs = Vec::with_capacity(rows.len());
        for row in rows {
            outputs.push(reduce_balanced(&row, inputs, &mut gates));
        }

        XorNetwork {
            inputs,
            gates,
            outputs,
        }
    }

    /// Number of network inputs.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of 2-input XOR gates after sharing.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The gates, in topological order (a gate only references inputs
    /// or earlier gates).
    pub fn gates(&self) -> &[XorGate] {
        &self.gates
    }

    /// The signal driving output `j` (`None` = constant 0).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn output_signal(&self, j: usize) -> Option<usize> {
        self.outputs[j]
    }

    /// Logic depth in XOR levels (0 for a pure-wire network).
    pub fn depth(&self) -> usize {
        let mut depths = vec![0usize; self.inputs + self.gates.len()];
        for (g, gate) in self.gates.iter().enumerate() {
            depths[self.inputs + g] = depths[gate.a].max(depths[gate.b]) + 1;
        }
        self.outputs
            .iter()
            .flatten()
            .map(|&sig| depths[sig])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the network on a concrete input vector.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_count()`.
    pub fn eval(&self, input: &ss_gf2::BitVec) -> ss_gf2::BitVec {
        assert_eq!(input.len(), self.inputs, "input width mismatch");
        let mut values = Vec::with_capacity(self.inputs + self.gates.len());
        values.extend(input.iter());
        for gate in &self.gates {
            let v = values[gate.a] ^ values[gate.b];
            values.push(v);
        }
        self.outputs
            .iter()
            .map(|o| o.map(|sig| values[sig]).unwrap_or(false))
            .collect()
    }
}

/// Reduces a support set to one signal with a balanced tree of XORs
/// (signal ids follow the `inputs + gate_index` convention). Returns
/// `None` for an empty set.
fn reduce_balanced(row: &[usize], inputs: usize, gates: &mut Vec<XorGate>) -> Option<usize> {
    match row.len() {
        0 => None,
        1 => Some(row[0]),
        _ => {
            let mut level: Vec<usize> = row.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for chunk in level.chunks(2) {
                    if let [a, b] = *chunk {
                        gates.push(XorGate { a, b });
                        next.push(inputs + gates.len() - 1);
                    } else {
                        next.push(chunk[0]);
                    }
                }
                level = next;
            }
            Some(level[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ss_gf2::{BitMatrix, BitVec};

    #[test]
    fn empty_and_wire_outputs() {
        let m = BitMatrix::from_rows(vec![
            BitVec::zeros(3),
            BitVec::from_bits([false, true, false]),
        ]);
        let net = XorNetwork::synthesize(&m);
        assert_eq!(net.gate_count(), 0);
        assert_eq!(net.depth(), 0);
        assert_eq!(net.output_signal(0), None);
        assert_eq!(net.output_signal(1), Some(1));
        let out = net.eval(&BitVec::from_bits([true, true, true]));
        assert!(!out.get(0));
        assert!(out.get(1));
    }

    #[test]
    fn single_dense_row_uses_w_minus_1_gates() {
        let m = BitMatrix::from_rows(vec![BitVec::ones(7)]);
        let net = XorNetwork::synthesize(&m);
        assert_eq!(net.gate_count(), 6);
        // balanced tree of 7 leaves has depth 3
        assert_eq!(net.depth(), 3);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            let v = BitVec::random(7, &mut rng);
            assert_eq!(net.eval(&v), m.mul_vec(&v));
        }
    }

    #[test]
    fn sharing_beats_naive_on_structured_rows() {
        // 4 outputs all containing {0,1,2}: naive = 4*3-? = 4 rows of
        // weight 4 -> 12 gates; with sharing the common triple costs 2
        // gates once plus 1 gate per row = 6.
        let rows = (0..4)
            .map(|i| {
                let mut r = BitVec::zeros(8);
                r.set(0, true);
                r.set(1, true);
                r.set(2, true);
                r.set(4 + i, true);
                r
            })
            .collect();
        let m = BitMatrix::from_rows(rows);
        let naive: usize = m.iter_rows().map(|r| r.count_ones() - 1).sum();
        let net = XorNetwork::synthesize(&m);
        assert!(net.gate_count() < naive, "{} !< {naive}", net.gate_count());
        assert!(net.gate_count() <= 6);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20 {
            let v = BitVec::random(8, &mut rng);
            assert_eq!(net.eval(&v), m.mul_vec(&v));
        }
    }

    #[test]
    fn random_matrices_evaluate_correctly() {
        let mut rng = SmallRng::seed_from_u64(3);
        for trial in 0..10 {
            let m = BitMatrix::random(12, 16, &mut rng);
            let net = XorNetwork::synthesize(&m);
            assert_eq!(net.input_count(), 16);
            assert_eq!(net.output_count(), 12);
            for _ in 0..5 {
                let v = BitVec::random(16, &mut rng);
                assert_eq!(net.eval(&v), m.mul_vec(&v), "trial {trial}");
            }
        }
    }

    #[test]
    fn gates_are_topologically_ordered() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = BitMatrix::random(10, 10, &mut rng);
        let net = XorNetwork::synthesize(&m);
        for (g, gate) in net.gates().iter().enumerate() {
            let sig = net.input_count() + g;
            assert!(
                gate.a < sig && gate.b < sig,
                "gate {g} references later signal"
            );
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(5);
        let m = BitMatrix::random(9, 9, &mut rng);
        let a = XorNetwork::synthesize(&m);
        let b = XorNetwork::synthesize(&m);
        assert_eq!(a.gate_count(), b.gate_count());
        assert_eq!(a.gates(), b.gates());
    }
}
