//! State Skip circuits and State Skip LFSRs — the paper's contribution
//! at the hardware level.
//!
//! For an LFSR with transition matrix `T`, the expressions
//! `F_0^k .. F_{n-1}^k` of the paper's equation (1) are exactly the rows
//! of `T^k`: the state `k` cycles ahead is a fixed linear function of
//! the current state, independent of what the state is. The *State Skip
//! circuit* materialises that function as an XOR network behind a 2:1
//! multiplexer per cell (Fig. 2), so the LFSR advances by `k` states per
//! clock when Mode = State Skip.

use std::error::Error;
use std::fmt;

use ss_gf2::{BitMatrix, BitVec};

use crate::xor_network::XorNetwork;
use crate::Lfsr;

/// Error constructing a [`SkipCircuit`] or [`StateSkipLfsr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SkipError {
    /// The speedup factor `k` must be at least 1.
    ZeroSpeedup,
}

impl fmt::Display for SkipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipError::ZeroSpeedup => write!(f, "speedup factor k must be >= 1"),
        }
    }
}

impl Error for SkipError {}

/// The linear map `T^k` of an LFSR, packaged as hardware-aware data.
///
/// # Example
///
/// ```
/// use ss_gf2::{primitive_poly, BitVec};
/// use ss_lfsr::{Lfsr, SkipCircuit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lfsr = Lfsr::fibonacci(primitive_poly(8)?);
/// let skip = SkipCircuit::new(&lfsr, 5)?;
/// lfsr.load(&BitVec::from_u128(8, 0xA5));
/// let jumped = skip.jump(lfsr.state());
/// lfsr.step_by(5);
/// assert_eq!(jumped, *lfsr.state());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SkipCircuit {
    k: u64,
    matrix: BitMatrix,
}

impl SkipCircuit {
    /// Builds the State Skip circuit for speedup factor `k`.
    ///
    /// # Errors
    ///
    /// Returns [`SkipError::ZeroSpeedup`] if `k == 0`.
    pub fn new(lfsr: &Lfsr, k: u64) -> Result<Self, SkipError> {
        if k == 0 {
            return Err(SkipError::ZeroSpeedup);
        }
        Ok(SkipCircuit {
            k,
            matrix: lfsr.transition_matrix().pow(k),
        })
    }

    /// The speedup factor `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The matrix `T^k` (row `i` = expression `F_i^k`).
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }

    /// Computes the state `k` cycles ahead of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the LFSR size.
    pub fn jump(&self, state: &BitVec) -> BitVec {
        self.matrix.mul_vec(state)
    }

    /// 2-input XOR count of the naive (no-sharing) implementation:
    /// each cell with `w` terms needs `w - 1` XORs.
    pub fn raw_xor2_count(&self) -> usize {
        self.matrix
            .iter_rows()
            .map(|r| r.count_ones().saturating_sub(1))
            .sum()
    }

    /// Synthesises the circuit as a shared XOR network (greedy common
    /// subexpression extraction). This is what the paper's
    /// gate-equivalent numbers are based on.
    pub fn synthesize(&self) -> XorNetwork {
        XorNetwork::synthesize(&self.matrix)
    }
}

/// An LFSR extended with a State Skip circuit and the per-cell 2:1
/// multiplexers of the paper's Fig. 2.
///
/// `step()` advances one state (Normal mode); `jump()` advances `k`
/// states in one clock (State Skip mode). Use
/// [`advance_states`](StateSkipLfsr::advance_states) to traverse an
/// arbitrary gap with the minimum number of clocks (skips first, then
/// normal steps for the remainder).
#[derive(Debug, Clone)]
pub struct StateSkipLfsr {
    lfsr: Lfsr,
    skip: SkipCircuit,
}

impl StateSkipLfsr {
    /// Wraps `lfsr` with a State Skip circuit of speedup `k`.
    ///
    /// # Errors
    ///
    /// Returns [`SkipError::ZeroSpeedup`] if `k == 0`.
    pub fn new(lfsr: Lfsr, k: u64) -> Result<Self, SkipError> {
        let skip = SkipCircuit::new(&lfsr, k)?;
        Ok(StateSkipLfsr { lfsr, skip })
    }

    /// Number of cells.
    pub fn size(&self) -> usize {
        self.lfsr.size()
    }

    /// The speedup factor `k`.
    pub fn k(&self) -> u64 {
        self.skip.k()
    }

    /// The wrapped LFSR.
    pub fn lfsr(&self) -> &Lfsr {
        &self.lfsr
    }

    /// The skip circuit.
    pub fn skip_circuit(&self) -> &SkipCircuit {
        &self.skip
    }

    /// Current state.
    pub fn state(&self) -> &BitVec {
        self.lfsr.state()
    }

    /// Loads a seed.
    ///
    /// # Panics
    ///
    /// Panics if the seed width differs from the LFSR size.
    pub fn load(&mut self, seed: &BitVec) {
        self.lfsr.load(seed);
    }

    /// One clock in Normal mode: advance 1 state.
    pub fn step(&mut self) {
        self.lfsr.step();
    }

    /// One clock in State Skip mode: advance `k` states.
    pub fn jump(&mut self) {
        let next = self.skip.jump(self.lfsr.state());
        self.lfsr.load(&next);
    }

    /// Advances exactly `states` states using as few clocks as
    /// possible: `states / k` skip clocks then `states % k` normal
    /// clocks. Returns the number of clocks spent.
    pub fn advance_states(&mut self, states: u64) -> u64 {
        let k = self.skip.k();
        let skips = states / k;
        let remainder = states % k;
        for _ in 0..skips {
            self.jump();
        }
        for _ in 0..remainder {
            self.step();
        }
        skips + remainder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LfsrKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ss_gf2::primitive_poly;

    #[test]
    fn zero_speedup_rejected() {
        let lfsr = Lfsr::fibonacci(primitive_poly(5).unwrap());
        assert!(matches!(
            SkipCircuit::new(&lfsr, 0),
            Err(SkipError::ZeroSpeedup)
        ));
        assert!(matches!(
            StateSkipLfsr::new(lfsr, 0),
            Err(SkipError::ZeroSpeedup)
        ));
    }

    #[test]
    fn k_equals_one_is_normal_step() {
        let mut lfsr = Lfsr::fibonacci(primitive_poly(7).unwrap());
        lfsr.load(&BitVec::from_u128(7, 0x55));
        let skip = SkipCircuit::new(&lfsr, 1).unwrap();
        let jumped = skip.jump(lfsr.state());
        lfsr.step();
        assert_eq!(jumped, *lfsr.state());
    }

    #[test]
    fn jump_equals_k_steps_for_many_k() {
        let mut rng = SmallRng::seed_from_u64(314);
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            for k in [2u64, 3, 8, 24, 100] {
                let mut lfsr = Lfsr::try_new(primitive_poly(16).unwrap(), kind).unwrap();
                lfsr.load(&BitVec::random(16, &mut rng));
                let skip = SkipCircuit::new(&lfsr, k).unwrap();
                let jumped = skip.jump(lfsr.state());
                lfsr.step_by(k);
                assert_eq!(jumped, *lfsr.state(), "{kind} k={k}");
            }
        }
    }

    #[test]
    fn jump_relation_holds_from_any_state() {
        // The paper's key point: F^k depends only on the polynomial and
        // k, not on the state. Verify for several states.
        let mut rng = SmallRng::seed_from_u64(11);
        let lfsr0 = Lfsr::fibonacci(primitive_poly(12).unwrap());
        let skip = SkipCircuit::new(&lfsr0, 7).unwrap();
        for _ in 0..20 {
            let mut lfsr = lfsr0.clone();
            lfsr.load(&BitVec::random(12, &mut rng));
            let jumped = skip.jump(lfsr.state());
            lfsr.step_by(7);
            assert_eq!(jumped, *lfsr.state());
        }
    }

    #[test]
    fn state_skip_lfsr_interleaves_modes() {
        let mut rng = SmallRng::seed_from_u64(21);
        let lfsr = Lfsr::fibonacci(primitive_poly(10).unwrap());
        let mut ss = StateSkipLfsr::new(lfsr.clone(), 6).unwrap();
        let seed = BitVec::random(10, &mut rng);
        ss.load(&seed);
        // normal, skip, normal, skip => 1 + 6 + 1 + 6 = 14 states
        ss.step();
        ss.jump();
        ss.step();
        ss.jump();
        let mut reference = lfsr;
        reference.load(&seed);
        reference.step_by(14);
        assert_eq!(ss.state(), reference.state());
    }

    #[test]
    fn advance_states_exact_landing() {
        let mut rng = SmallRng::seed_from_u64(33);
        for gap in [0u64, 1, 5, 6, 7, 23, 24, 25, 100] {
            let lfsr = Lfsr::fibonacci(primitive_poly(9).unwrap());
            let mut ss = StateSkipLfsr::new(lfsr.clone(), 6).unwrap();
            let seed = BitVec::random(9, &mut rng);
            ss.load(&seed);
            let clocks = ss.advance_states(gap);
            assert_eq!(clocks, gap / 6 + gap % 6, "clock count for gap {gap}");
            let mut reference = lfsr;
            reference.load(&seed);
            reference.step_by(gap);
            assert_eq!(ss.state(), reference.state(), "gap {gap}");
        }
    }

    #[test]
    fn skip_matrix_is_invertible() {
        let lfsr = Lfsr::fibonacci(primitive_poly(8).unwrap());
        let skip = SkipCircuit::new(&lfsr, 13).unwrap();
        assert!(skip.matrix().inverse().is_some());
    }

    #[test]
    fn raw_xor_count_definition() {
        let lfsr = Lfsr::fibonacci(primitive_poly(8).unwrap());
        let skip = SkipCircuit::new(&lfsr, 9).unwrap();
        let expected: usize = skip
            .matrix()
            .iter_rows()
            .map(|r| r.count_ones().saturating_sub(1))
            .sum();
        assert_eq!(skip.raw_xor2_count(), expected);
        assert!(skip.raw_xor2_count() > 0);
    }
}
