//! Linear feedback shift registers.

use std::error::Error;
use std::fmt;

use ss_gf2::{BitMatrix, BitVec, Gf2Poly};

/// Feedback structure of an [`Lfsr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LfsrKind {
    /// External-XOR LFSR: one XOR cone feeding the last cell.
    Fibonacci,
    /// Internal-XOR LFSR: the recirculated bit XORs into the tap cells.
    Galois,
}

impl fmt::Display for LfsrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfsrKind::Fibonacci => write!(f, "fibonacci"),
            LfsrKind::Galois => write!(f, "galois"),
        }
    }
}

/// Error constructing an [`Lfsr`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LfsrError {
    /// The characteristic polynomial must have degree >= 2.
    DegreeTooSmall,
    /// The characteristic polynomial must have a nonzero constant term
    /// (otherwise the transition is singular and states are lost).
    ZeroConstantTerm,
}

impl fmt::Display for LfsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfsrError::DegreeTooSmall => write!(f, "characteristic polynomial degree must be >= 2"),
            LfsrError::ZeroConstantTerm => {
                write!(
                    f,
                    "characteristic polynomial must have a nonzero constant term"
                )
            }
        }
    }
}

impl Error for LfsrError {}

/// A linear feedback shift register over GF(2).
///
/// The register holds `n = deg(f)` cells `c0..c(n-1)` where `f` is the
/// characteristic polynomial. Stepping is *structural* (shift plus
/// feedback XOR, O(n/64) words), but the exact transition matrix `T`
/// with `state(t+1) = T * state(t)` is available through
/// [`transition_matrix`](Lfsr::transition_matrix) — the State Skip
/// circuit is `T^k`.
///
/// Cell `c0` is the serial output in both forms.
///
/// # Example
///
/// ```
/// use ss_gf2::{primitive_poly, BitVec};
/// use ss_lfsr::Lfsr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lfsr = Lfsr::fibonacci(primitive_poly(5)?);
/// lfsr.load(&BitVec::from_u128(5, 0b00001));
/// // A maximal-length 5-bit LFSR revisits its seed after 2^5 - 1 steps.
/// let seed = lfsr.state().clone();
/// for _ in 0..31 { lfsr.step(); }
/// assert_eq!(*lfsr.state(), seed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lfsr {
    poly: Gf2Poly,
    kind: LfsrKind,
    size: usize,
    /// Bit mask over cells: for Fibonacci, the cells XORed to form the
    /// feedback bit; for Galois, the cells the recirculated bit XORs
    /// into (excluding the plain shift).
    taps: BitVec,
    state: BitVec,
}

impl Lfsr {
    /// Creates a Fibonacci (external-XOR) LFSR.
    ///
    /// The new value of cell `c(n-1)` each clock is the XOR of cells
    /// `c_j` for every `j` with a nonzero `x^j` coefficient in `poly`
    /// (`j < n`); all other cells shift toward `c0`.
    ///
    /// # Panics
    ///
    /// Panics if `poly` has degree < 2 or a zero constant term; use
    /// [`Lfsr::try_new`] for a fallible constructor.
    pub fn fibonacci(poly: Gf2Poly) -> Self {
        Lfsr::try_new(poly, LfsrKind::Fibonacci).expect("invalid LFSR polynomial")
    }

    /// Creates a Galois (internal-XOR) LFSR.
    ///
    /// # Panics
    ///
    /// Panics if `poly` has degree < 2 or a zero constant term; use
    /// [`Lfsr::try_new`] for a fallible constructor.
    pub fn galois(poly: Gf2Poly) -> Self {
        Lfsr::try_new(poly, LfsrKind::Galois).expect("invalid LFSR polynomial")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// * [`LfsrError::DegreeTooSmall`] if `deg(poly) < 2`.
    /// * [`LfsrError::ZeroConstantTerm`] if `poly(0) = 0`.
    pub fn try_new(poly: Gf2Poly, kind: LfsrKind) -> Result<Self, LfsrError> {
        let size = poly.degree().unwrap_or(0);
        if size < 2 {
            return Err(LfsrError::DegreeTooSmall);
        }
        if !poly.coeff(0) {
            return Err(LfsrError::ZeroConstantTerm);
        }
        let mut taps = BitVec::zeros(size);
        for e in poly.exponents() {
            if e < size {
                taps.set(e, true);
            }
        }
        Ok(Lfsr {
            poly,
            kind,
            size,
            taps,
            state: BitVec::zeros(size),
        })
    }

    /// Number of cells `n`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The characteristic polynomial.
    pub fn poly(&self) -> &Gf2Poly {
        &self.poly
    }

    /// Feedback structure.
    pub fn kind(&self) -> LfsrKind {
        self.kind
    }

    /// Current state (cell `c0` is bit 0).
    pub fn state(&self) -> &BitVec {
        &self.state
    }

    /// The sparse feedback tap indices: every `j < n` with a nonzero
    /// `x^j` coefficient in the characteristic polynomial. For
    /// Fibonacci these cells XOR into the feedback bit; for Galois the
    /// recirculated bit XORs into cell `j - 1` for each tap `j > 0`.
    pub fn tap_indices(&self) -> Vec<usize> {
        self.taps.iter_ones().collect()
    }

    /// Loads a seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed.len() != size()`.
    pub fn load(&mut self, seed: &BitVec) {
        assert_eq!(seed.len(), self.size, "seed width mismatch");
        self.state = seed.clone();
    }

    /// Serial output: the value of cell `c0`.
    pub fn output(&self) -> bool {
        self.state.get(0)
    }

    /// Advances the register one clock in Normal mode.
    pub fn step(&mut self) {
        match self.kind {
            LfsrKind::Fibonacci => {
                // allocation-free tap parity: XOR the masked words and
                // take one popcount
                let acc = self
                    .state
                    .as_words()
                    .iter()
                    .zip(self.taps.as_words())
                    .fold(0u64, |acc, (s, t)| acc ^ (s & t));
                let feedback = acc.count_ones() % 2 == 1;
                self.state.shift_down();
                self.state.set(self.size - 1, feedback);
            }
            LfsrKind::Galois => {
                let recirc = self.state.get(0);
                self.state.shift_down();
                if recirc {
                    self.state.set(self.size - 1, true);
                    // taps bit j means coefficient x^j; the recirculated
                    // bit XORs into cell j-1 (the cell whose next value
                    // feeds position j of the polynomial recurrence).
                    for j in self.taps.iter_ones() {
                        if j > 0 {
                            self.state.toggle(j - 1);
                        }
                    }
                }
            }
        }
    }

    /// Advances the register `count` clocks in Normal mode.
    pub fn step_by(&mut self, count: u64) {
        for _ in 0..count {
            self.step();
        }
    }

    /// The transition matrix `T` such that `state(t+1) = T * state(t)`.
    ///
    /// Built column-by-column from the structural [`step`](Lfsr::step),
    /// so the two can never drift apart.
    pub fn transition_matrix(&self) -> BitMatrix {
        let n = self.size;
        let mut columns = Vec::with_capacity(n);
        let mut probe = self.clone();
        for j in 0..n {
            probe.state = BitVec::unit(n, j);
            probe.step();
            columns.push(probe.state.clone());
        }
        // columns[j] = T * e_j; assemble row-major.
        let mut t = BitMatrix::zeros(n, n);
        for (j, col) in columns.iter().enumerate() {
            for i in col.iter_ones() {
                t.set(i, j, true);
            }
        }
        t
    }

    /// Generates the serial output sequence of the next `len` clocks
    /// (mutating the state).
    pub fn output_sequence(&mut self, len: usize) -> Vec<bool> {
        (0..len)
            .map(|_| {
                let bit = self.output();
                self.step();
                bit
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_gf2::{berlekamp_massey, primitive_poly};

    fn poly5() -> Gf2Poly {
        primitive_poly(5).unwrap()
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            Lfsr::try_new(Gf2Poly::from_exponents(&[1, 0]), LfsrKind::Fibonacci),
            Err(LfsrError::DegreeTooSmall)
        ));
        assert!(matches!(
            Lfsr::try_new(Gf2Poly::from_exponents(&[3, 1]), LfsrKind::Fibonacci),
            Err(LfsrError::ZeroConstantTerm)
        ));
        assert!(Lfsr::try_new(poly5(), LfsrKind::Galois).is_ok());
    }

    #[test]
    fn zero_state_is_fixed_point() {
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let mut l = Lfsr::try_new(poly5(), kind).unwrap();
            l.step_by(10);
            assert!(l.state().is_zero(), "{kind}: zero must stay zero");
        }
    }

    #[test]
    fn maximal_period_for_primitive_poly() {
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let mut l = Lfsr::try_new(poly5(), kind).unwrap();
            l.load(&BitVec::unit(5, 0));
            let seed = l.state().clone();
            let mut period = 0u64;
            loop {
                l.step();
                period += 1;
                if *l.state() == seed {
                    break;
                }
                assert!(period < 40, "{kind}: runaway period");
            }
            assert_eq!(period, 31, "{kind}: primitive degree-5 LFSR has period 31");
        }
    }

    #[test]
    fn transition_matrix_matches_structural_step() {
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let mut l = Lfsr::try_new(primitive_poly(9).unwrap(), kind).unwrap();
            let t = l.transition_matrix();
            l.load(&BitVec::from_u128(9, 0b1_0110_1001));
            for step in 0..20 {
                let expected = t.mul_vec(l.state());
                l.step();
                assert_eq!(*l.state(), expected, "{kind}: step {step}");
            }
        }
    }

    #[test]
    fn transition_matrix_is_invertible() {
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let l = Lfsr::try_new(primitive_poly(7).unwrap(), kind).unwrap();
            assert!(
                l.transition_matrix().inverse().is_some(),
                "{kind}: LFSR transitions must be bijective"
            );
        }
    }

    #[test]
    fn output_sequence_satisfies_characteristic_recurrence() {
        // For a Fibonacci LFSR with poly f, the serial output satisfies
        // s[t+n] = XOR_{j<n, f_j=1} s[t+j].
        let poly = primitive_poly(6).unwrap();
        let mut l = Lfsr::fibonacci(poly.clone());
        l.load(&BitVec::from_u128(6, 0b101101));
        let seq = l.output_sequence(80);
        let n = 6;
        for t in 0..seq.len() - n {
            let mut expect = false;
            for j in 0..n {
                if poly.coeff(j) && seq[t + j] {
                    expect = !expect;
                }
            }
            assert_eq!(seq[t + n], expect, "recurrence at t={t}");
        }
    }

    #[test]
    fn berlekamp_massey_recovers_degree() {
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let poly = primitive_poly(8).unwrap();
            let mut l = Lfsr::try_new(poly, kind).unwrap();
            l.load(&BitVec::from_u128(8, 0x5B));
            let seq = l.output_sequence(64);
            let (_, len) = berlekamp_massey(&seq);
            assert_eq!(
                len, 8,
                "{kind}: shortest LFSR for the output must have length 8"
            );
        }
    }

    #[test]
    fn fibonacci_berlekamp_massey_connection_poly() {
        // Pin the exact orientation: for our Fibonacci stepping the BM
        // connection polynomial equals the characteristic polynomial
        // with coefficients read back c_j = f_{n-j} (the reciprocal).
        let poly = primitive_poly(6).unwrap();
        let mut l = Lfsr::fibonacci(poly.clone());
        l.load(&BitVec::from_u128(6, 1));
        let seq = l.output_sequence(48);
        let (c, len) = berlekamp_massey(&seq);
        assert_eq!(len, 6);
        assert_eq!(
            c,
            poly.reciprocal(),
            "connection poly = reciprocal of characteristic"
        );
    }

    #[test]
    fn galois_and_fibonacci_have_same_cycle_structure() {
        // Same characteristic polynomial => same period from any
        // nonzero state (both are maximal for a primitive polynomial).
        let poly = primitive_poly(7).unwrap();
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let mut l = Lfsr::try_new(poly.clone(), kind).unwrap();
            l.load(&BitVec::from_u128(7, 0x41));
            let seed = l.state().clone();
            let mut period = 0u64;
            loop {
                l.step();
                period += 1;
                if *l.state() == seed {
                    break;
                }
            }
            assert_eq!(period, 127, "{kind}");
        }
    }

    #[test]
    fn step_by_matches_individual_steps() {
        let mut a = Lfsr::fibonacci(poly5());
        let mut b = a.clone();
        a.load(&BitVec::from_u128(5, 0b10011));
        b.load(&BitVec::from_u128(5, 0b10011));
        a.step_by(17);
        for _ in 0..17 {
            b.step();
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn load_rejects_wrong_width() {
        let mut l = Lfsr::fibonacci(poly5());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.load(&BitVec::zeros(4));
        }));
        assert!(result.is_err());
    }
}
