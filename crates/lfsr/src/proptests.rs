//! Property-based tests for the LFSR/hardware layer.

#![cfg(test)]

use proptest::prelude::*;

use ss_gf2::{primitive_poly, BitMatrix, BitVec};

use crate::{ExpressionStream, Lfsr, LfsrKind, Misr, PhaseShifter, SkipCircuit, XorNetwork};

fn seed_for(n: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), n).prop_map(BitVec::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural stepping and the transition matrix can never drift.
    #[test]
    fn step_matches_transition_matrix(
        n in 3usize..20,
        galois in any::<bool>(),
        steps in 1usize..40,
        raw in any::<u64>(),
    ) {
        let kind = if galois { LfsrKind::Galois } else { LfsrKind::Fibonacci };
        let mut lfsr = Lfsr::try_new(primitive_poly(n).unwrap(), kind).unwrap();
        let t = lfsr.transition_matrix();
        let seed = BitVec::from_u128(n, (raw as u128) & ((1u128 << n) - 1));
        lfsr.load(&seed);
        let mut state = seed;
        for _ in 0..steps {
            state = t.mul_vec(&state);
            lfsr.step();
        }
        prop_assert_eq!(lfsr.state(), &state);
    }

    /// The skip matrix composes: T^a * T^b = T^(a+b).
    #[test]
    fn skip_matrices_compose(n in 3usize..14, a in 1u64..40, b in 1u64..40) {
        let lfsr = Lfsr::fibonacci(primitive_poly(n).unwrap());
        let sa = SkipCircuit::new(&lfsr, a).unwrap();
        let sb = SkipCircuit::new(&lfsr, b).unwrap();
        let sab = SkipCircuit::new(&lfsr, a + b).unwrap();
        prop_assert_eq!(sa.matrix().mul(sb.matrix()), sab.matrix().clone());
    }

    /// Jumping backward: T^k is invertible, so skip circuits are
    /// lossless (distinct states stay distinct).
    #[test]
    fn skip_is_injective(n in 3usize..12, k in 1u64..64) {
        let lfsr = Lfsr::fibonacci(primitive_poly(n).unwrap());
        let skip = SkipCircuit::new(&lfsr, k).unwrap();
        prop_assert!(skip.matrix().inverse().is_some());
    }

    /// Expression streaming against concrete simulation, any seed.
    #[test]
    fn stream_predicts_cells(n in 3usize..14, raw in any::<u64>(), cycles in 1usize..30) {
        let mut lfsr = Lfsr::fibonacci(primitive_poly(n).unwrap());
        let seed = BitVec::from_u128(n, (raw as u128) & ((1u128 << n) - 1));
        lfsr.load(&seed);
        let mut stream = ExpressionStream::new(&lfsr);
        for _ in 0..cycles {
            lfsr.step();
            stream.step();
        }
        for i in 0..n {
            prop_assert_eq!(stream.cell_expr(i).dot(&seed), lfsr.state().get(i));
        }
    }

    /// Phase shifter evaluation is linear in the state.
    #[test]
    fn phase_shifter_is_linear(
        hw_seed in any::<u64>(),
        a in seed_for(16),
        b in seed_for(16),
    ) {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(hw_seed);
        let ps = PhaseShifter::synthesize(16, 8, 3, &mut rng).unwrap();
        let mut ab = a.clone();
        ab.xor_with(&b);
        let mut sum = ps.outputs(&a);
        sum.xor_with(&ps.outputs(&b));
        prop_assert_eq!(ps.outputs(&ab), sum);
    }

    /// XOR network synthesis is exact for arbitrary matrices and never
    /// worse than the naive chain implementation.
    #[test]
    fn xor_network_exact_and_no_worse(
        rows in proptest::collection::vec(seed_for(14), 1..12),
        input in seed_for(14),
    ) {
        let m = BitMatrix::from_rows(rows);
        let net = XorNetwork::synthesize(&m);
        prop_assert_eq!(net.eval(&input), m.mul_vec(&input));
        let naive: usize = (0..m.row_count())
            .map(|r| m.row(r).count_ones().saturating_sub(1))
            .sum();
        prop_assert!(net.gate_count() <= naive.max(1));
    }

    /// MISR linearity: signature(a ^ b) = signature(a) ^ signature(b)
    /// from the zero state, for arbitrary streams.
    #[test]
    fn misr_linearity(
        a in proptest::collection::vec(seed_for(8), 1..20),
        raw in any::<u64>(),
    ) {
        let b: Vec<BitVec> = a
            .iter()
            .enumerate()
            .map(|(i, _)| BitVec::from_u128(8, ((raw.rotate_left(i as u32)) as u128) & 0xFF))
            .collect();
        let lfsr = Lfsr::fibonacci(primitive_poly(16).unwrap());
        let mut ma = Misr::new(lfsr.clone(), 8).unwrap();
        ma.compact_all(&a);
        let mut mb = Misr::new(lfsr.clone(), 8).unwrap();
        mb.compact_all(&b);
        let ab: Vec<BitVec> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| {
                let mut z = x.clone();
                z.xor_with(y);
                z
            })
            .collect();
        let mut mab = Misr::new(lfsr, 8).unwrap();
        mab.compact_all(&ab);
        let mut expect = ma.signature().clone();
        expect.xor_with(mb.signature());
        prop_assert_eq!(mab.signature(), &expect);
    }

    /// Every tabulated primitive polynomial yields a maximal-period
    /// LFSR for small degrees (exhaustive period walk).
    #[test]
    fn small_lfsrs_are_maximal(n in 3usize..12, galois in any::<bool>()) {
        let kind = if galois { LfsrKind::Galois } else { LfsrKind::Fibonacci };
        let mut lfsr = Lfsr::try_new(primitive_poly(n).unwrap(), kind).unwrap();
        lfsr.load(&BitVec::unit(n, 0));
        let seed = lfsr.state().clone();
        let mut period = 0u64;
        loop {
            lfsr.step();
            period += 1;
            if lfsr.state() == &seed {
                break;
            }
            prop_assert!(period <= 1 << n, "runaway");
        }
        prop_assert_eq!(period, (1u64 << n) - 1);
    }
}
