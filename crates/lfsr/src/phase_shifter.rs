//! XOR phase shifters.
//!
//! An LFSR's adjacent cells produce heavily correlated (shifted)
//! sequences. Feeding `m` scan chains directly from `m` cells would
//! make many test cubes unencodable. A *phase shifter* drives each scan
//! chain with the XOR of a small set of cells, which shifts each
//! chain's sequence far apart in the m-sequence and — crucially for
//! seed solving — makes the per-chain linear expressions independent.

use std::error::Error;
use std::fmt;

use rand::Rng;

use ss_gf2::{BitMatrix, BitVec};

/// Error synthesising a [`PhaseShifter`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PhaseShifterError {
    /// Requested more taps per output than there are LFSR cells.
    TooManyTaps {
        /// Requested taps per output.
        taps: usize,
        /// Available LFSR cells.
        cells: usize,
    },
    /// Could not find linearly independent tap sets within the retry
    /// budget (only possible when `outputs > cells`, which is rejected
    /// up front, or with pathological RNG streams).
    SynthesisFailed,
    /// `outputs` or `taps` was zero.
    EmptyRequest,
}

impl fmt::Display for PhaseShifterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseShifterError::TooManyTaps { taps, cells } => {
                write!(
                    f,
                    "requested {taps} taps per output but the LFSR has only {cells} cells"
                )
            }
            PhaseShifterError::SynthesisFailed => write!(f, "phase shifter synthesis failed"),
            PhaseShifterError::EmptyRequest => {
                write!(f, "phase shifter needs >= 1 output and >= 1 tap")
            }
        }
    }
}

impl Error for PhaseShifterError {}

/// A combinational XOR network mapping `n` LFSR cells to `m` scan-chain
/// inputs; output `j` is the XOR of a fixed tap set of cells.
///
/// When `m <= n` the synthesised tap rows are guaranteed linearly
/// independent, so no scan chain's bit stream is a linear combination
/// of the others at any single cycle.
///
/// # Example
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use ss_gf2::BitVec;
/// use ss_lfsr::PhaseShifter;
///
/// # fn main() -> Result<(), ss_lfsr::PhaseShifterError> {
/// let mut rng = SmallRng::seed_from_u64(1);
/// let ps = PhaseShifter::synthesize(16, 8, 3, &mut rng)?;
/// let state = BitVec::from_u128(16, 0xBEEF);
/// assert_eq!(ps.outputs(&state).len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PhaseShifter {
    rows: BitMatrix, // m x n
}

impl PhaseShifter {
    /// Synthesises a phase shifter with `outputs` rows of `taps` random
    /// taps each over `cells` LFSR cells.
    ///
    /// Rows are drawn until they are pairwise distinct and — when
    /// `outputs <= cells` — linearly independent.
    ///
    /// # Errors
    ///
    /// * [`PhaseShifterError::EmptyRequest`] for zero outputs/taps.
    /// * [`PhaseShifterError::TooManyTaps`] when `taps > cells`.
    /// * [`PhaseShifterError::SynthesisFailed`] if the retry budget is
    ///   exhausted.
    pub fn synthesize<R: Rng + ?Sized>(
        cells: usize,
        outputs: usize,
        taps: usize,
        rng: &mut R,
    ) -> Result<Self, PhaseShifterError> {
        if outputs == 0 || taps == 0 {
            return Err(PhaseShifterError::EmptyRequest);
        }
        if taps > cells {
            return Err(PhaseShifterError::TooManyTaps { taps, cells });
        }
        let need_independent = outputs <= cells;
        let mut rows: Vec<BitVec> = Vec::with_capacity(outputs);
        // All XORs of 1..=3 already-chosen rows. A candidate equal to
        // such a combination would create a dependency among <= 4
        // outputs; when outputs > cells full independence is impossible,
        // but keeping dependencies wide stops test cubes touching a few
        // cells of one scan slice from hitting structural,
        // position-invariant conflicts (see `ss-core`'s encoder).
        let mut spanned: std::collections::HashSet<BitVec> = std::collections::HashSet::new();
        let mut attempts = 0usize;
        let budget = 1000 * outputs.max(1);
        while rows.len() < outputs {
            attempts += 1;
            if attempts > budget {
                return Err(PhaseShifterError::SynthesisFailed);
            }
            let candidate = random_tap_row(cells, taps, rng);
            if candidate.is_zero() || spanned.contains(&candidate) {
                continue;
            }
            if need_independent {
                let mut trial = rows.clone();
                trial.push(candidate.clone());
                if BitMatrix::from_rows(trial).rank() != rows.len() + 1 {
                    continue;
                }
            }
            // fold the accepted row into the low-weight-combination set
            for i in 0..rows.len() {
                let mut pair = candidate.clone();
                pair.xor_with(&rows[i]);
                for row_j in rows.iter().skip(i + 1) {
                    let mut triple = pair.clone();
                    triple.xor_with(row_j);
                    spanned.insert(triple);
                }
                spanned.insert(pair);
            }
            spanned.insert(candidate.clone());
            rows.push(candidate);
        }
        Ok(PhaseShifter {
            rows: BitMatrix::from_rows(rows),
        })
    }

    /// The identity shifter: output `j` is cell `j` directly (no XORs).
    /// Useful for single-scan-chain setups and tests.
    pub fn identity(cells: usize) -> Self {
        PhaseShifter {
            rows: BitMatrix::identity(cells),
        }
    }

    /// Builds a shifter from explicit tap rows (`m x n`).
    pub fn from_rows(rows: BitMatrix) -> Self {
        PhaseShifter { rows }
    }

    /// Number of scan-chain outputs `m`.
    pub fn output_count(&self) -> usize {
        self.rows.row_count()
    }

    /// Number of LFSR-cell inputs `n`.
    pub fn input_count(&self) -> usize {
        self.rows.col_count()
    }

    /// Tap cells of output `j`, in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn taps(&self, j: usize) -> Vec<usize> {
        self.rows.row(j).iter_ones().collect()
    }

    /// The tap matrix (`m x n`).
    pub fn rows(&self) -> &BitMatrix {
        &self.rows
    }

    /// Evaluates all outputs for a concrete LFSR state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != input_count()`.
    pub fn outputs(&self, state: &BitVec) -> BitVec {
        self.rows.mul_vec(state)
    }

    /// Evaluates output `j` for a concrete LFSR state.
    ///
    /// # Panics
    ///
    /// Panics if out of range or width mismatch.
    pub fn output(&self, state: &BitVec, j: usize) -> bool {
        self.rows.row(j).dot(state)
    }

    /// Number of 2-input XOR gates in a naive (chain) implementation:
    /// `sum(max(taps_j - 1, 0))`.
    pub fn xor2_count(&self) -> usize {
        self.rows
            .iter_rows()
            .map(|r| r.count_ones().saturating_sub(1))
            .sum()
    }

    /// A basis of the *output dependencies*: each returned vector has
    /// one bit per output, and the outputs it selects XOR to zero at
    /// every cycle. Empty when `output_count() <= input_count()` and
    /// the rows are independent.
    ///
    /// Dependencies matter because they are position-invariant for
    /// seed solving: a test cube whose specified cells hit a dependent
    /// output set in one scan slice conflicts in *every* window
    /// position with probability 1/2 (see `ss-core`'s encoder).
    pub fn dependency_basis(&self) -> Vec<BitVec> {
        // dependencies among rows = kernel of the transpose
        self.rows.transpose().kernel()
    }

    /// The smallest number of outputs participating in any dependency,
    /// up to `limit` (exhaustive over XOR-combinations of the basis up
    /// to 2^basis_len combinations, capped at 2^16). `None` when no
    /// dependency exists (or none was found under the cap).
    pub fn min_dependency_weight(&self, limit: usize) -> Option<usize> {
        let basis = self.dependency_basis();
        if basis.is_empty() {
            return None;
        }
        let combos = 1usize << basis.len().min(16);
        let mut best: Option<usize> = None;
        for mask in 1..combos {
            let mut v = BitVec::zeros(self.output_count());
            for (i, b) in basis.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    v.xor_with(b);
                }
            }
            let w = v.count_ones();
            if w > 0 && w <= limit && best.is_none_or(|b| w < b) {
                best = Some(w);
            }
        }
        best
    }
}

fn random_tap_row<R: Rng + ?Sized>(cells: usize, taps: usize, rng: &mut R) -> BitVec {
    let mut row = BitVec::zeros(cells);
    let mut placed = 0;
    while placed < taps {
        let c = rng.gen_range(0..cells);
        if !row.get(c) {
            row.set(c, true);
            placed += 1;
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn synthesize_basic_properties() {
        let mut rng = SmallRng::seed_from_u64(5);
        let ps = PhaseShifter::synthesize(24, 16, 3, &mut rng).unwrap();
        assert_eq!(ps.output_count(), 16);
        assert_eq!(ps.input_count(), 24);
        for j in 0..16 {
            assert_eq!(ps.taps(j).len(), 3, "output {j} must have 3 taps");
        }
        assert_eq!(ps.rows().rank(), 16, "rows must be linearly independent");
        assert_eq!(ps.xor2_count(), 16 * 2);
    }

    #[test]
    fn synthesize_more_outputs_than_cells() {
        let mut rng = SmallRng::seed_from_u64(6);
        // independence impossible; rows must still be distinct
        let ps = PhaseShifter::synthesize(8, 12, 3, &mut rng).unwrap();
        assert_eq!(ps.output_count(), 12);
        for i in 0..12 {
            for j in 0..i {
                assert_ne!(ps.rows().row(i), ps.rows().row(j), "rows {i},{j} identical");
            }
        }
    }

    #[test]
    fn no_low_weight_dependencies_when_overcommitted() {
        // m > n: dependencies are unavoidable, but none may involve
        // fewer than 5 outputs.
        let mut rng = SmallRng::seed_from_u64(61);
        let ps = PhaseShifter::synthesize(16, 20, 3, &mut rng).unwrap();
        let rows: Vec<_> = (0..20).map(|i| ps.rows().row(i).clone()).collect();
        for i in 0..20 {
            for j in i + 1..20 {
                let mut ij = rows[i].clone();
                ij.xor_with(&rows[j]);
                assert!(!ij.is_zero(), "rows {i},{j} equal");
                for (k, row_k) in rows.iter().enumerate().skip(j + 1) {
                    let mut ijk = ij.clone();
                    ijk.xor_with(row_k);
                    assert!(!ijk.is_zero(), "rows {i},{j},{k} dependent");
                    for (l, row_l) in rows.iter().enumerate().skip(k + 1) {
                        let mut ijkl = ijk.clone();
                        ijkl.xor_with(row_l);
                        assert!(!ijkl.is_zero(), "rows {i},{j},{k},{l} dependent");
                    }
                }
            }
        }
    }

    #[test]
    fn synthesize_fails_when_distinct_rows_are_exhausted() {
        let mut rng = SmallRng::seed_from_u64(60);
        // only C(4,2)=6 distinct weight-2 rows exist over 4 cells
        assert!(matches!(
            PhaseShifter::synthesize(4, 10, 2, &mut rng),
            Err(PhaseShifterError::SynthesisFailed)
        ));
    }

    #[test]
    fn synthesize_errors() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(matches!(
            PhaseShifter::synthesize(4, 0, 2, &mut rng),
            Err(PhaseShifterError::EmptyRequest)
        ));
        assert!(matches!(
            PhaseShifter::synthesize(4, 2, 0, &mut rng),
            Err(PhaseShifterError::EmptyRequest)
        ));
        assert!(matches!(
            PhaseShifter::synthesize(4, 2, 5, &mut rng),
            Err(PhaseShifterError::TooManyTaps { taps: 5, cells: 4 })
        ));
    }

    #[test]
    fn identity_passthrough() {
        let ps = PhaseShifter::identity(6);
        let state = BitVec::from_u128(6, 0b110101);
        assert_eq!(ps.outputs(&state), state);
        assert_eq!(ps.xor2_count(), 0);
    }

    #[test]
    fn outputs_match_single_output_eval() {
        let mut rng = SmallRng::seed_from_u64(8);
        let ps = PhaseShifter::synthesize(12, 5, 4, &mut rng).unwrap();
        let state = BitVec::random(12, &mut rng);
        let all = ps.outputs(&state);
        for j in 0..5 {
            assert_eq!(all.get(j), ps.output(&state, j));
        }
    }

    #[test]
    fn dependency_basis_is_empty_for_independent_rows() {
        let mut rng = SmallRng::seed_from_u64(70);
        let ps = PhaseShifter::synthesize(24, 16, 3, &mut rng).unwrap();
        assert!(ps.dependency_basis().is_empty());
        assert_eq!(ps.min_dependency_weight(16), None);
    }

    #[test]
    fn dependency_basis_spans_real_dependencies() {
        let mut rng = SmallRng::seed_from_u64(71);
        let ps = PhaseShifter::synthesize(12, 20, 3, &mut rng).unwrap();
        let basis = ps.dependency_basis();
        assert_eq!(basis.len(), 20 - ps.rows().rank());
        // every basis vector selects outputs whose rows XOR to zero
        for dep in &basis {
            let mut acc = BitVec::zeros(12);
            for j in dep.iter_ones() {
                acc.xor_with(ps.rows().row(j));
            }
            assert!(acc.is_zero());
        }
        // the synthesis guard guarantees weight >= 5
        let min_w = ps
            .min_dependency_weight(20)
            .expect("m > n has dependencies");
        assert!(min_w >= 5, "min dependency weight {min_w} below the guard");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = SmallRng::seed_from_u64(99);
        let mut r2 = SmallRng::seed_from_u64(99);
        let a = PhaseShifter::synthesize(16, 8, 3, &mut r1).unwrap();
        let b = PhaseShifter::synthesize(16, 8, 3, &mut r2).unwrap();
        assert_eq!(a.rows().row(0), b.rows().row(0));
        assert_eq!(a.rows().row(7), b.rows().row(7));
    }
}
