//! Gate-equivalent cost model.
//!
//! The paper reports hardware overhead in *gate equivalents* (GE),
//! where one GE is the area of a 2-input NAND. [`CostModel`] holds the
//! per-primitive GE weights (defaults follow common standard-cell area
//! ratios) and [`GateCount`] aggregates a block's primitive counts so
//! different decompressor pieces can be summed and compared.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Gate-equivalent weights per primitive (1 GE = one 2-input NAND).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// 2-input NAND/NOR.
    pub nand2: f64,
    /// 2-input AND/OR.
    pub and2: f64,
    /// 2-input XOR/XNOR.
    pub xor2: f64,
    /// 2:1 multiplexer.
    pub mux2: f64,
    /// Inverter.
    pub inv: f64,
    /// D flip-flop (with clock enable).
    pub dff: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            nand2: 1.0,
            and2: 1.5,
            xor2: 2.5,
            mux2: 2.5,
            inv: 0.5,
            dff: 6.0,
        }
    }
}

impl CostModel {
    /// A model with every primitive costing one GE — useful to compare
    /// raw gate counts rather than areas.
    pub fn unit() -> Self {
        CostModel {
            nand2: 1.0,
            and2: 1.0,
            xor2: 1.0,
            mux2: 1.0,
            inv: 1.0,
            dff: 1.0,
        }
    }

    /// GE of a [`GateCount`] under this model.
    pub fn ge(&self, count: &GateCount) -> f64 {
        count.nand2 as f64 * self.nand2
            + count.and2 as f64 * self.and2
            + count.xor2 as f64 * self.xor2
            + count.mux2 as f64 * self.mux2
            + count.inv as f64 * self.inv
            + count.dff as f64 * self.dff
    }
}

/// Primitive-gate inventory of a hardware block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCount {
    /// 2-input NAND/NOR gates.
    pub nand2: usize,
    /// 2-input AND/OR gates.
    pub and2: usize,
    /// 2-input XOR/XNOR gates.
    pub xor2: usize,
    /// 2:1 multiplexers.
    pub mux2: usize,
    /// Inverters.
    pub inv: usize,
    /// D flip-flops.
    pub dff: usize,
}

impl GateCount {
    /// An empty inventory.
    pub fn new() -> Self {
        GateCount::default()
    }

    /// Inventory of an `n`-cell LFSR with `w`-term characteristic
    /// polynomial: `n` flip-flops plus the feedback XOR cone
    /// (`w - 2` XORs: the polynomial has `w` terms, two of which —
    /// `x^n` and the recirculation — are wires).
    pub fn lfsr(n: usize, poly_weight: usize) -> Self {
        GateCount {
            dff: n,
            xor2: poly_weight.saturating_sub(2),
            ..GateCount::default()
        }
    }

    /// Inventory of a State Skip front-end: the mode multiplexers
    /// (one 2:1 mux per cell) plus `xor2` shared XOR gates from the
    /// synthesised skip network.
    pub fn skip_frontend(n: usize, xor2: usize) -> Self {
        GateCount {
            mux2: n,
            xor2,
            ..GateCount::default()
        }
    }

    /// Inventory of a `bits`-bit binary counter: DFF + half-adder
    /// (XOR + AND) per bit.
    pub fn counter(bits: usize) -> Self {
        GateCount {
            dff: bits,
            xor2: bits,
            and2: bits,
            ..GateCount::default()
        }
    }

    /// Inventory of an XOR phase shifter with the given 2-input XOR
    /// count.
    pub fn xor_block(xor2: usize) -> Self {
        GateCount {
            xor2,
            ..GateCount::default()
        }
    }

    /// Total primitive count, ignoring weights.
    pub fn total_primitives(&self) -> usize {
        self.nand2 + self.and2 + self.xor2 + self.mux2 + self.inv + self.dff
    }
}

impl Add for GateCount {
    type Output = GateCount;

    fn add(self, rhs: GateCount) -> GateCount {
        GateCount {
            nand2: self.nand2 + rhs.nand2,
            and2: self.and2 + rhs.and2,
            xor2: self.xor2 + rhs.xor2,
            mux2: self.mux2 + rhs.mux2,
            inv: self.inv + rhs.inv,
            dff: self.dff + rhs.dff,
        }
    }
}

impl AddAssign for GateCount {
    fn add_assign(&mut self, rhs: GateCount) {
        *self = *self + rhs;
    }
}

impl fmt::Display for GateCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nand2={} and2={} xor2={} mux2={} inv={} dff={}",
            self.nand2, self.and2, self.xor2, self.mux2, self.inv, self.dff
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_weights() {
        let m = CostModel::default();
        assert_eq!(m.nand2, 1.0);
        assert!(m.xor2 > m.and2, "XOR must cost more than AND");
        assert!(m.dff > m.xor2, "FF must cost more than XOR");
    }

    #[test]
    fn ge_of_simple_blocks() {
        let m = CostModel::default();
        let lfsr = GateCount::lfsr(24, 5);
        assert_eq!(lfsr.dff, 24);
        assert_eq!(lfsr.xor2, 3);
        let ge = m.ge(&lfsr);
        assert!((ge - (24.0 * 6.0 + 3.0 * 2.5)).abs() < 1e-9);
    }

    #[test]
    fn counter_and_add() {
        let a = GateCount::counter(4);
        let b = GateCount::xor_block(10);
        let sum = a + b;
        assert_eq!(sum.xor2, 14);
        assert_eq!(sum.dff, 4);
        let mut acc = GateCount::new();
        acc += a;
        acc += b;
        assert_eq!(acc, sum);
    }

    #[test]
    fn unit_model_counts_primitives() {
        let m = CostModel::unit();
        let c = GateCount {
            nand2: 1,
            and2: 2,
            xor2: 3,
            mux2: 4,
            inv: 5,
            dff: 6,
        };
        assert_eq!(m.ge(&c), c.total_primitives() as f64);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", GateCount::counter(3)).is_empty());
    }
}
