//! Multiple-input signature register (MISR) — the test response
//! compactor of the paper's Fig. 1.
//!
//! The CUT's scan-out responses are folded into an LFSR-like register;
//! after the whole test the register holds a *signature* that is
//! compared against the fault-free reference. A faulty response stream
//! is missed only when its error polynomial is divisible by the MISR's
//! characteristic polynomial (aliasing probability ≈ 2^-n).

use ss_gf2::BitVec;

use crate::Lfsr;

/// A multiple-input signature register built on an [`Lfsr`].
///
/// Each [`compact`](Misr::compact) call clocks the register once:
/// the LFSR transition is applied and the `m` response bits are XORed
/// into the low `m` cells.
///
/// # Example
///
/// ```
/// use ss_gf2::{primitive_poly, BitVec};
/// use ss_lfsr::{Lfsr, Misr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut misr = Misr::new(Lfsr::fibonacci(primitive_poly(16)?), 8)?;
/// misr.compact(&BitVec::from_u128(8, 0xA5));
/// misr.compact(&BitVec::from_u128(8, 0x3C));
/// let signature = misr.signature().clone();
/// assert!(!signature.is_zero());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Misr {
    lfsr: Lfsr,
    width: usize,
    cycles: u64,
}

impl Misr {
    /// Creates a MISR compacting `width` parallel response bits.
    ///
    /// # Errors
    ///
    /// Returns an error message when `width` exceeds the LFSR size or
    /// is zero.
    pub fn new(lfsr: Lfsr, width: usize) -> Result<Self, String> {
        if width == 0 {
            return Err("MISR width must be >= 1".into());
        }
        if width > lfsr.size() {
            return Err(format!(
                "MISR width {width} exceeds register size {}",
                lfsr.size()
            ));
        }
        Ok(Misr {
            lfsr,
            width,
            cycles: 0,
        })
    }

    /// Number of parallel response inputs.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Register size in bits.
    pub fn size(&self) -> usize {
        self.lfsr.size()
    }

    /// Clock cycles compacted so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the register to all zeros.
    pub fn reset(&mut self) {
        let zero = BitVec::zeros(self.lfsr.size());
        self.lfsr.load(&zero);
        self.cycles = 0;
    }

    /// Clocks the register once, folding in `response`.
    ///
    /// # Panics
    ///
    /// Panics if `response.len() != width()`.
    pub fn compact(&mut self, response: &BitVec) {
        assert_eq!(response.len(), self.width, "response width mismatch");
        self.lfsr.step();
        let mut state = self.lfsr.state().clone();
        for i in response.iter_ones() {
            state.toggle(i);
        }
        self.lfsr.load(&state);
        self.cycles += 1;
    }

    /// Compacts a whole stream of responses.
    pub fn compact_all<'a, I: IntoIterator<Item = &'a BitVec>>(&mut self, responses: I) {
        for r in responses {
            self.compact(r);
        }
    }

    /// The current signature.
    pub fn signature(&self) -> &BitVec {
        self.lfsr.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use ss_gf2::primitive_poly;

    fn misr16() -> Misr {
        Misr::new(Lfsr::fibonacci(primitive_poly(16).unwrap()), 8).unwrap()
    }

    #[test]
    fn width_validation() {
        let lfsr = Lfsr::fibonacci(primitive_poly(8).unwrap());
        assert!(Misr::new(lfsr.clone(), 0).is_err());
        assert!(Misr::new(lfsr.clone(), 9).is_err());
        assert!(Misr::new(lfsr, 8).is_ok());
    }

    #[test]
    fn zero_stream_keeps_zero_signature() {
        let mut m = misr16();
        for _ in 0..50 {
            m.compact(&BitVec::zeros(8));
        }
        assert!(m.signature().is_zero());
        assert_eq!(m.cycles(), 50);
    }

    #[test]
    fn signature_is_linear_in_the_response_stream() {
        // sig(a xor b) = sig(a) xor sig(b) when starting from zero —
        // the property behind aliasing analysis.
        let mut rng = SmallRng::seed_from_u64(10);
        let a: Vec<BitVec> = (0..30).map(|_| BitVec::random(8, &mut rng)).collect();
        let b: Vec<BitVec> = (0..30).map(|_| BitVec::random(8, &mut rng)).collect();
        let ab: Vec<BitVec> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| {
                let mut z = x.clone();
                z.xor_with(y);
                z
            })
            .collect();

        let mut ma = misr16();
        ma.compact_all(&a);
        let mut mb = misr16();
        mb.compact_all(&b);
        let mut mab = misr16();
        mab.compact_all(&ab);

        let mut expect = ma.signature().clone();
        expect.xor_with(mb.signature());
        assert_eq!(*mab.signature(), expect);
    }

    #[test]
    fn single_bit_errors_never_alias() {
        // An error in exactly one cycle/bit cannot cancel: the MISR is
        // linear and injective over a single injection.
        let mut rng = SmallRng::seed_from_u64(20);
        let clean: Vec<BitVec> = (0..40).map(|_| BitVec::random(8, &mut rng)).collect();
        let mut reference = misr16();
        reference.compact_all(&clean);

        for trial in 0..20 {
            let cycle = rng.gen_range(0..clean.len());
            let bit = rng.gen_range(0..8);
            let mut faulty = clean.clone();
            faulty[cycle].toggle(bit);
            let mut m = misr16();
            m.compact_all(&faulty);
            assert_ne!(
                m.signature(),
                reference.signature(),
                "single-bit error aliased (trial {trial})"
            );
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut rng = SmallRng::seed_from_u64(30);
        let mut m = misr16();
        m.compact(&BitVec::random(8, &mut rng));
        assert!(!m.signature().is_zero());
        m.reset();
        assert!(m.signature().is_zero());
        assert_eq!(m.cycles(), 0);
    }

    #[test]
    fn random_error_streams_rarely_alias() {
        // Statistical sanity: with a 16-bit MISR, fully random error
        // streams alias with probability ~2^-16; 200 trials should see
        // essentially none.
        let mut rng = SmallRng::seed_from_u64(40);
        let clean: Vec<BitVec> = (0..25).map(|_| BitVec::random(8, &mut rng)).collect();
        let mut reference = misr16();
        reference.compact_all(&clean);
        let mut aliases = 0;
        for _ in 0..200 {
            let faulty: Vec<BitVec> = (0..25).map(|_| BitVec::random(8, &mut rng)).collect();
            if faulty == clean {
                continue;
            }
            let mut m = misr16();
            m.compact_all(&faulty);
            if m.signature() == reference.signature() {
                aliases += 1;
            }
        }
        assert!(aliases <= 1, "unexpected aliasing rate: {aliases}/200");
    }

    #[test]
    fn adjacent_diagonal_errors_do_alias() {
        // Known MISR weakness: an error at (cycle t, bit i) combined
        // with (t+1, i-1) cancels through the shift structure when cell
        // i is not a feedback tap. Pin that behaviour.
        let mut rng = SmallRng::seed_from_u64(41);
        let clean: Vec<BitVec> = (0..20).map(|_| BitVec::random(8, &mut rng)).collect();
        let mut reference = misr16();
        reference.compact_all(&clean);

        let mut faulty = clean.clone();
        faulty[5].toggle(6); // bit 6 is not a tap of primitive_poly(16)
        faulty[6].toggle(5);
        let mut m = misr16();
        m.compact_all(&faulty);
        assert_eq!(
            m.signature(),
            reference.signature(),
            "diagonal error pair must alias"
        );
    }
}
