//! LFSRs and State Skip LFSRs.
//!
//! This crate implements the hardware structures of the DATE 2008 paper
//! *"State Skip LFSRs: Bridging the Gap between Test Data Compression
//! and Test Set Embedding for IP Cores"*:
//!
//! * [`Lfsr`] — Fibonacci (external-XOR) and Galois (internal-XOR)
//!   linear feedback shift registers driven by a characteristic
//!   polynomial, with structural O(n/64) stepping and an exact
//!   transition-matrix view.
//! * [`SkipCircuit`] — the paper's State Skip circuit: the linear map
//!   `T^k` that advances an LFSR by `k` states in a single clock.
//! * [`StateSkipLfsr`] — an LFSR plus its skip circuit and the
//!   Normal/State-Skip mode multiplexing of Fig. 2.
//! * [`PhaseShifter`] — XOR phase shifter expanding `n` LFSR cells to
//!   `m` scan-chain inputs with linearly independent tap sets.
//! * [`ExpressionStream`] — symbolic simulation: the linear expressions
//!   of every cell/output over the initial seed variables, advanced one
//!   cycle at a time (the machinery behind seed computation).
//! * [`PackedLfsrStream`] — 64-lane bit-sliced concrete simulation:
//!   [`Lfsr::stream_packed`] runs up to 64 phase-offset copies of one
//!   LFSR per word, and [`PhaseShifter::outputs_packed`] emits a whole
//!   `u64` of scan-chain bits per chain per clock (the generation side
//!   of the packed fault-simulation path).
//! * [`XorNetwork`] — multi-output XOR synthesis with greedy common
//!   subexpression extraction, plus [`CostModel`] gate-equivalent
//!   accounting (how the paper's overhead numbers are estimated).
//! * [`Misr`] — multiple-input signature register, the test response
//!   compactor shown in the paper's Fig. 1.
//!
//! # Example
//!
//! ```
//! use ss_gf2::primitive_poly;
//! use ss_lfsr::{Lfsr, StateSkipLfsr};
//! use ss_gf2::BitVec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lfsr = Lfsr::fibonacci(primitive_poly(8)?);
//! let mut skip = StateSkipLfsr::new(lfsr, 4)?;
//! skip.load(&BitVec::from_u128(8, 0b1011_0001));
//! let here = skip.state().clone();
//! skip.jump();                         // one State Skip clock ...
//! let jumped = skip.state().clone();
//! skip.load(&here);
//! for _ in 0..4 { skip.step(); }       // ... equals four Normal clocks
//! assert_eq!(*skip.state(), jumped);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cost;
mod lfsr;
mod misr;
mod packed;
mod phase_shifter;
mod proptests;
mod skip;
mod stream;
mod xor_network;

pub use cost::{CostModel, GateCount};
pub use lfsr::{Lfsr, LfsrError, LfsrKind};
pub use misr::Misr;
pub use packed::PackedLfsrStream;
pub use phase_shifter::{PhaseShifter, PhaseShifterError};
pub use skip::{SkipCircuit, SkipError, StateSkipLfsr};
pub use stream::ExpressionStream;
pub use xor_network::{XorGate, XorNetwork};
