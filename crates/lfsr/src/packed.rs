//! 64-lane bit-sliced LFSR streaming: the packed pattern-generation
//! path.
//!
//! Scalar expansion walks one LFSR through `L * r` clocks per seed and
//! reads one phase-shifter output bit per chain per clock. The packed
//! path instead runs up to 64 *lanes* of the same LFSR simultaneously,
//! transposed: lane `v` is the register advanced `v * stride` clocks
//! ahead, and the stream state is stored bit-sliced (`slices[i]` holds
//! cell `i` of all lanes, one lane per bit). One [`step`] then advances
//! all 64 lanes with a handful of word XORs, and
//! [`PhaseShifter::outputs_packed`] yields, per scan chain, a whole
//! `u64` of output bits — 64 window positions per word instead of one.
//!
//! With `stride = r` (the scan depth), the 64 lanes are exactly 64
//! consecutive window positions of one seed, which is how
//! `ss-core` packs a window into [`ss_gf2::PackedPatterns`] blocks.
//!
//! [`step`]: PackedLfsrStream::step

use ss_gf2::{BitMatrix, BitVec};

use crate::{Lfsr, LfsrKind, PhaseShifter};

/// Up to 64 copies of one LFSR, phase-offset by a fixed stride and
/// stepped together bit-sliced (lane `v` lives in bit `v` of every
/// state word).
///
/// Lane initialisation uses the transition-matrix power `T^stride`
/// (one [`BitMatrix::pow`](ss_gf2::BitMatrix::pow) plus one
/// matrix-vector product per lane) instead of `stride` scalar
/// [`Lfsr::step`]s per lane, so wide strides cost `O(n^3 log stride)`
/// setup rather than `O(lanes * stride * n)` stepping.
///
/// # Example
///
/// ```
/// use ss_gf2::{primitive_poly, BitVec};
/// use ss_lfsr::{Lfsr, PackedLfsrStream};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lfsr = Lfsr::fibonacci(primitive_poly(8)?);
/// let seed = BitVec::from_u128(8, 0b1011_0001);
/// // 4 lanes, each 10 clocks apart
/// let mut stream = lfsr.stream_packed(&seed, 10, 4);
/// stream.step(); // all four lanes advance one clock at once
///
/// // lane 2 now equals the scalar register at cycle 2*10 + 1
/// let mut scalar = lfsr.clone();
/// scalar.load(&seed);
/// scalar.step_by(21);
/// assert_eq!(stream.lane_state(2), *scalar.state());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PackedLfsrStream {
    kind: LfsrKind,
    /// Sparse feedback taps (`x^j` coefficients of the characteristic
    /// polynomial with `j < n`), shared by both feedback structures.
    taps: Vec<usize>,
    /// `slices[i]` = cell `i` of every lane, one lane per bit.
    slices: Vec<u64>,
    lanes: usize,
    cycle: u64,
}

impl PackedLfsrStream {
    /// Creates a stream whose lane `v` holds `T^(v * stride) * seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seed.len() != lfsr.size()` or `lanes` is outside
    /// `1..=64`.
    pub fn new(lfsr: &Lfsr, seed: &BitVec, stride: u64, lanes: usize) -> Self {
        // one matrix power + (lanes - 1) matrix-vector products, not
        // lanes * stride scalar steps
        PackedLfsrStream::with_jump(lfsr, seed, &lfsr.transition_matrix().pow(stride), lanes)
    }

    /// Like [`new`](PackedLfsrStream::new) with a precomputed lane
    /// jump matrix (`jump = T^stride`): lane `v` holds `jump^v * seed`.
    /// Callers that expand many seeds against one piece of hardware
    /// compute the power once and amortise it across every stream.
    ///
    /// # Panics
    ///
    /// Panics if `seed.len() != lfsr.size()`, `jump` is not
    /// `size x size`, or `lanes` is outside `1..=64`.
    pub fn with_jump(lfsr: &Lfsr, seed: &BitVec, jump: &BitMatrix, lanes: usize) -> Self {
        assert_eq!(seed.len(), lfsr.size(), "seed width mismatch");
        assert!(
            jump.row_count() == lfsr.size() && jump.col_count() == lfsr.size(),
            "jump matrix must be {n} x {n}",
            n = lfsr.size()
        );
        assert!(
            (1..=64).contains(&lanes),
            "lane count {lanes} outside 1..=64"
        );
        let n = lfsr.size();
        let mut slices = vec![0u64; n];
        let mut state = seed.clone();
        for lane in 0..lanes {
            if lane > 0 {
                state = jump.mul_vec(&state);
            }
            for i in state.iter_ones() {
                slices[i] |= 1u64 << lane;
            }
        }
        let taps = lfsr.tap_indices();
        PackedLfsrStream {
            kind: lfsr.kind(),
            taps,
            slices,
            lanes,
            cycle: 0,
        }
    }

    /// Creates the same stream as [`new`](PackedLfsrStream::new) by
    /// *walking* the scalar register `stride` steps between lanes
    /// instead of multiplying by `T^stride`. For small strides (a
    /// scan-chain depth, say) the walk's `O(lanes·stride·n/64)` word
    /// ops beat the matrix route's `O(lanes·n²/64)`; window expanders
    /// choose this form, wide-stride callers the matrix one.
    ///
    /// # Panics
    ///
    /// Panics if `seed.len() != lfsr.size()` or `lanes` is outside
    /// `1..=64`.
    pub fn from_walk(lfsr: &Lfsr, seed: &BitVec, stride: u64, lanes: usize) -> Self {
        assert_eq!(seed.len(), lfsr.size(), "seed width mismatch");
        assert!(
            (1..=64).contains(&lanes),
            "lane count {lanes} outside 1..=64"
        );
        let n = lfsr.size();
        let mut slices = vec![0u64; n];
        let mut walker = lfsr.clone();
        walker.load(seed);
        for lane in 0..lanes {
            for i in walker.state().iter_ones() {
                slices[i] |= 1u64 << lane;
            }
            if lane + 1 < lanes {
                walker.step_by(stride);
            }
        }
        PackedLfsrStream {
            kind: lfsr.kind(),
            taps: lfsr.tap_indices(),
            slices,
            lanes,
            cycle: 0,
        }
    }

    /// Number of LFSR cells `n`.
    pub fn size(&self) -> usize {
        self.slices.len()
    }

    /// Number of active lanes (`1..=64`).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Clocks advanced since construction (per lane).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The bit-sliced state: `slices()[i]` carries cell `i` of every
    /// lane (lane `v` in bit `v`). This is the word layout
    /// [`PhaseShifter::outputs_packed`] consumes.
    pub fn slices(&self) -> &[u64] {
        &self.slices
    }

    /// Reconstructs the full state of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn lane_state(&self, lane: usize) -> BitVec {
        assert!(lane < self.lanes, "lane {lane} out of range {}", self.lanes);
        BitVec::from_bits(self.slices.iter().map(|&w| (w >> lane) & 1 == 1))
    }

    /// Advances every lane one clock: the bit-sliced analogue of
    /// [`Lfsr::step`], costing `O(n + weight(f))` word operations for
    /// all lanes together.
    pub fn step(&mut self) {
        let n = self.slices.len();
        match self.kind {
            LfsrKind::Fibonacci => {
                let mut feedback = 0u64;
                for &j in &self.taps {
                    feedback ^= self.slices[j];
                }
                self.slices.copy_within(1..n, 0);
                self.slices[n - 1] = feedback;
            }
            LfsrKind::Galois => {
                let recirc = self.slices[0];
                self.slices.copy_within(1..n, 0);
                self.slices[n - 1] = recirc;
                for &j in &self.taps {
                    if j > 0 {
                        self.slices[j - 1] ^= recirc;
                    }
                }
            }
        }
        self.cycle += 1;
    }

    /// Advances every lane `count` clocks.
    pub fn step_by(&mut self, count: u64) {
        for _ in 0..count {
            self.step();
        }
    }
}

impl Lfsr {
    /// Starts a [`PackedLfsrStream`] on this LFSR's structure: `lanes`
    /// phase-shifted copies seeded at `T^(v * stride) * seed`, stepped
    /// together bit-sliced. The receiver's own state is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `seed.len() != size()` or `lanes` is outside `1..=64`.
    pub fn stream_packed(&self, seed: &BitVec, stride: u64, lanes: usize) -> PackedLfsrStream {
        PackedLfsrStream::new(self, seed, stride, lanes)
    }
}

impl PhaseShifter {
    /// Evaluates every output for a bit-sliced LFSR state: `out[c]` is
    /// the packed word of chain `c`'s output across all lanes (lane
    /// `v` in bit `v`) — 64 scan-chain bits per chain per call.
    ///
    /// # Panics
    ///
    /// Panics if `slices.len() != input_count()`.
    pub fn outputs_packed(&self, slices: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.output_count());
        self.outputs_packed_into(slices, &mut out);
        out
    }

    /// [`outputs_packed`](PhaseShifter::outputs_packed) into a caller
    /// buffer (cleared first), for allocation-free inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `slices.len() != input_count()`.
    pub fn outputs_packed_into(&self, slices: &[u64], out: &mut Vec<u64>) {
        assert_eq!(
            slices.len(),
            self.input_count(),
            "bit-sliced state width mismatch"
        );
        out.clear();
        out.extend(self.rows().iter_rows().map(|row| {
            let mut acc = 0u64;
            for cell in row.iter_ones() {
                acc ^= slices[cell];
            }
            acc
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ss_gf2::primitive_poly;

    #[test]
    fn lanes_track_scalar_stepping_for_both_kinds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let lfsr = Lfsr::try_new(primitive_poly(9).unwrap(), kind).unwrap();
            let seed = BitVec::random(9, &mut rng);
            let mut stream = lfsr.stream_packed(&seed, 7, 5);
            for step in 0..30u64 {
                for lane in 0..5 {
                    let mut scalar = lfsr.clone();
                    scalar.load(&seed);
                    scalar.step_by(lane as u64 * 7 + step);
                    assert_eq!(
                        stream.lane_state(lane),
                        *scalar.state(),
                        "{kind} lane {lane} step {step}"
                    );
                }
                stream.step();
            }
            assert_eq!(stream.cycle(), 30);
        }
    }

    #[test]
    fn sixty_four_lanes_fill_every_bit() {
        let lfsr = Lfsr::fibonacci(primitive_poly(7).unwrap());
        let seed = BitVec::from_u128(7, 1);
        let stream = lfsr.stream_packed(&seed, 1, 64);
        // lane v = T^v * seed; a maximal-length 7-bit LFSR (period 127)
        // makes all 64 lane states distinct
        let mut seen = std::collections::HashSet::new();
        for lane in 0..64 {
            seen.insert(stream.lane_state(lane));
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn outputs_packed_matches_scalar_outputs_per_lane() {
        let mut rng = SmallRng::seed_from_u64(12);
        let lfsr = Lfsr::fibonacci(primitive_poly(12).unwrap());
        let shifter = PhaseShifter::synthesize(12, 8, 3, &mut rng).unwrap();
        let seed = BitVec::random(12, &mut rng);
        let mut stream = lfsr.stream_packed(&seed, 5, 64);
        for _ in 0..20 {
            let words = shifter.outputs_packed(stream.slices());
            assert_eq!(words.len(), 8);
            for lane in 0..64 {
                let outs = shifter.outputs(&stream.lane_state(lane));
                for (c, &word) in words.iter().enumerate() {
                    assert_eq!(
                        (word >> lane) & 1 == 1,
                        outs.get(c),
                        "lane {lane} chain {c}"
                    );
                }
            }
            stream.step();
        }
    }

    #[test]
    fn from_walk_equals_matrix_initialisation() {
        let mut rng = SmallRng::seed_from_u64(13);
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let lfsr = Lfsr::try_new(primitive_poly(11).unwrap(), kind).unwrap();
            let seed = BitVec::random(11, &mut rng);
            for (stride, lanes) in [(1u64, 64usize), (9, 17), (40, 3)] {
                let walked = PackedLfsrStream::from_walk(&lfsr, &seed, stride, lanes);
                let jumped = lfsr.stream_packed(&seed, stride, lanes);
                assert_eq!(
                    walked.slices(),
                    jumped.slices(),
                    "{kind} stride {stride} lanes {lanes}"
                );
            }
        }
    }

    #[test]
    fn step_by_equals_steps() {
        let lfsr = Lfsr::galois(primitive_poly(7).unwrap());
        let seed = BitVec::from_u128(7, 0x55);
        let mut a = lfsr.stream_packed(&seed, 3, 8);
        let mut b = lfsr.stream_packed(&seed, 3, 8);
        a.step_by(13);
        for _ in 0..13 {
            b.step();
        }
        assert_eq!(a.slices(), b.slices());
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn rejects_more_than_64_lanes() {
        let lfsr = Lfsr::fibonacci(primitive_poly(6).unwrap());
        let _ = lfsr.stream_packed(&BitVec::zeros(6), 1, 65);
    }

    #[test]
    #[should_panic(expected = "seed width")]
    fn rejects_wrong_seed_width() {
        let lfsr = Lfsr::fibonacci(primitive_poly(6).unwrap());
        let _ = lfsr.stream_packed(&BitVec::zeros(5), 1, 4);
    }
}
