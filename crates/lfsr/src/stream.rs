//! Symbolic LFSR simulation: expression streaming.
//!
//! Seed computation treats the initial LFSR state as variables
//! `a0..a(n-1)` and needs, for every clock cycle `t` and every phase
//! shifter output `c`, the linear expression (a GF(2) row vector) that
//! the hardware produces at that point. [`ExpressionStream`] maintains
//! the n expression rows of the LFSR cells and advances them one clock
//! at a time in O(weight(T)) row-XORs — far cheaper than recomputing
//! `T^t` per cycle.

use ss_gf2::{BitMatrix, BitVec};

use crate::{Lfsr, PhaseShifter};

/// Symbolic state of an LFSR: one linear expression per cell, over the
/// initial-state variables.
///
/// After `t` calls to [`step`](ExpressionStream::step), row `i` equals
/// row `i` of `T^t`; evaluating it against a concrete seed gives the
/// value of cell `i` at cycle `t`.
///
/// # Example
///
/// ```
/// use ss_gf2::{primitive_poly, BitVec};
/// use ss_lfsr::{ExpressionStream, Lfsr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lfsr = Lfsr::fibonacci(primitive_poly(6)?);
/// let seed = BitVec::from_u128(6, 0b101101);
/// lfsr.load(&seed);
///
/// let mut stream = ExpressionStream::new(&lfsr);
/// for _ in 0..10 {
///     lfsr.step();
///     stream.step();
/// }
/// // symbolic row evaluated at the seed == concrete cell value
/// for i in 0..6 {
///     assert_eq!(stream.cell_expr(i).dot(&seed), lfsr.state().get(i));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExpressionStream {
    /// Sparse transition matrix: `sparse_t[i]` lists the cells whose
    /// previous-cycle expressions XOR into cell `i`'s next expression.
    sparse_t: Vec<Vec<usize>>,
    rows: Vec<BitVec>,
    cycle: u64,
    n: usize,
}

impl ExpressionStream {
    /// Creates a stream at cycle 0 (`rows = identity`: cell `i` holds
    /// variable `a_i`).
    pub fn new(lfsr: &Lfsr) -> Self {
        let n = lfsr.size();
        let t = lfsr.transition_matrix();
        let sparse_t = (0..n).map(|i| t.row(i).iter_ones().collect()).collect();
        ExpressionStream {
            sparse_t,
            rows: (0..n).map(|i| BitVec::unit(n, i)).collect(),
            cycle: 0,
            n,
        }
    }

    /// Number of LFSR cells (and of seed variables).
    pub fn size(&self) -> usize {
        self.n
    }

    /// Cycles advanced since construction.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances one clock: rows become the expressions one cycle later.
    pub fn step(&mut self) {
        let mut next = Vec::with_capacity(self.n);
        for taps in &self.sparse_t {
            let mut row = BitVec::zeros(self.n);
            for &j in taps {
                row.xor_with(&self.rows[j]);
            }
            next.push(row);
        }
        self.rows = next;
        self.cycle += 1;
    }

    /// Advances `count` clocks.
    pub fn step_by(&mut self, count: u64) {
        for _ in 0..count {
            self.step();
        }
    }

    /// The expression of cell `i` at the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `i >= size()`.
    pub fn cell_expr(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// The expression of phase shifter output `chain` at the current
    /// cycle: the XOR of the cell expressions the shifter taps.
    ///
    /// # Panics
    ///
    /// Panics if the phase shifter input width differs from the LFSR
    /// size, or `chain` is out of range.
    pub fn output_expr(&self, shifter: &PhaseShifter, chain: usize) -> BitVec {
        assert_eq!(
            shifter.input_count(),
            self.n,
            "phase shifter width mismatch"
        );
        let mut expr = BitVec::zeros(self.n);
        for cell in shifter.taps(chain) {
            expr.xor_with(&self.rows[cell]);
        }
        expr
    }

    /// Expressions of all phase shifter outputs at the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if the phase shifter input width differs from the LFSR size.
    pub fn output_exprs(&self, shifter: &PhaseShifter) -> Vec<BitVec> {
        (0..shifter.output_count())
            .map(|c| self.output_expr(shifter, c))
            .collect()
    }

    /// Snapshot of the cell expressions as a matrix (equals `T^cycle`).
    pub fn to_matrix(&self) -> BitMatrix {
        BitMatrix::from_rows(self.rows.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LfsrKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ss_gf2::primitive_poly;

    #[test]
    fn rows_equal_matrix_power() {
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let lfsr = Lfsr::try_new(primitive_poly(8).unwrap(), kind).unwrap();
            let t = lfsr.transition_matrix();
            let mut stream = ExpressionStream::new(&lfsr);
            for e in 0..12u64 {
                assert_eq!(stream.to_matrix(), t.pow(e), "{kind} cycle {e}");
                stream.step();
            }
        }
    }

    #[test]
    fn expressions_evaluate_to_concrete_states() {
        let mut rng = SmallRng::seed_from_u64(2024);
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let mut lfsr = Lfsr::try_new(primitive_poly(10).unwrap(), kind).unwrap();
            let seed = BitVec::random(10, &mut rng);
            lfsr.load(&seed);
            let mut stream = ExpressionStream::new(&lfsr);
            for cycle in 0..50 {
                for i in 0..10 {
                    assert_eq!(
                        stream.cell_expr(i).dot(&seed),
                        lfsr.state().get(i),
                        "{kind} cycle {cycle} cell {i}"
                    );
                }
                lfsr.step();
                stream.step();
            }
        }
    }

    #[test]
    fn output_exprs_match_concrete_phase_shifter_outputs() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut lfsr = Lfsr::fibonacci(primitive_poly(12).unwrap());
        let shifter = PhaseShifter::synthesize(12, 8, 3, &mut rng).unwrap();
        let seed = BitVec::random(12, &mut rng);
        lfsr.load(&seed);
        let mut stream = ExpressionStream::new(&lfsr);
        for _ in 0..40 {
            let symbolic = stream.output_exprs(&shifter);
            let concrete = shifter.outputs(lfsr.state());
            for (c, expr) in symbolic.iter().enumerate() {
                assert_eq!(expr.dot(&seed), concrete.get(c), "chain {c}");
            }
            lfsr.step();
            stream.step();
        }
    }

    #[test]
    fn step_by_equals_steps() {
        let lfsr = Lfsr::fibonacci(primitive_poly(6).unwrap());
        let mut a = ExpressionStream::new(&lfsr);
        let mut b = ExpressionStream::new(&lfsr);
        a.step_by(9);
        for _ in 0..9 {
            b.step();
        }
        assert_eq!(a.to_matrix(), b.to_matrix());
        assert_eq!(a.cycle(), 9);
    }
}
