//! `state-skip` — command-line driver for the State Skip compression
//! flow, built on the staged `Engine` API.
//!
//! ```text
//! state-skip stats     <test_set.txt>               # local set statistics
//! state-skip stats     [--addr A]                   # server telemetry
//! state-skip run       <test_set.txt> [L] [S] [k] [--threads N]
//! state-skip run       --bench <f.bench> --cubes <f.cubes> [L] [S] [k] [--threads N]
//! state-skip compare   <test_set.txt> [L] [S] [k] [--threads N]
//! state-skip compare   --bench <f.bench> --cubes <f.cubes> [L] [S] [k] [--threads N]
//! state-skip sweep     <test_set.txt> [L]
//! state-skip rtl       <test_set.txt> [k]
//! state-skip gen       <profile> <seed>             # emit a synthetic set
//! state-skip workloads                              # list the corpus
//! state-skip serve     [--addr A] [--workers N] [--cache-mb M] [--queue N] [--store-dir D]
//!                      [--peers A1,A2,.. --shard-id I] [--replicas R] [--max-conns N]
//! state-skip submit    [--addr A | --addr A1,A2,..] (--workload <name> | --bench <f> --cubes <f> | <set.txt>) [L] [S] [k] [--trace-id T]
//! state-skip reconfigure [--addr A1,A2,..] --epoch E --peers P1,P2,..
//! state-skip trace     <trace-id> [--addr A1,A2,..]  # stitched cross-shard timeline
//! ```
//!
//! Test sets use the text format of `ss_testdata::TestSet`
//! (`chains <m> depth <r>` header + one `01X` cube per line); netlists
//! use the ISCAS'89 `.bench` format of `ss_circuit::parse_bench`. The
//! `--bench/--cubes` form runs the engine on a user-supplied circuit +
//! cube-set pair and closes the loop with fault simulation of the
//! decompressed sequences.
//!
//! `serve` runs the long-lived compression service of `ss_server`
//! (bounded queue, worker pool, content-addressed artifact cache);
//! `submit` sends one workload to a running service and waits for the
//! result. This binary lives in the workspace facade package so it can
//! see both `ss_core` and `ss_server`.

use std::io::Write as _;
use std::process::ExitCode;

use ss_core::{
    comparison_table, emit_decompressor_rtl, improvement_percent, parse_workload,
    sequence_coverage, Baseline11, ClassicalReseeding, CompressionScheme, Engine, StateSkip, Table,
};
use ss_lfsr::SkipCircuit;
use ss_server::{CacheTier, Client, JobSpec, ServeOptions, Server, TraceContext};
use ss_telemetry::{render_timeline, stitch, ShardDump};
use ss_testdata::{generate_test_set, CubeProfile, TestSet, WorkloadRegistry};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  state-skip stats     <test_set.txt>                  # local set statistics
  state-skip stats     [--addr A=127.0.0.1:7113] [--json]  # server telemetry
  state-skip run       <test_set.txt> [L=100] [S=5] [k=10] [--threads N]
  state-skip run       --bench <f.bench> --cubes <f.cubes> [L=100] [S=5] [k=10] [--threads N]
  state-skip compare   <test_set.txt> [L=100] [S=5] [k=10] [--threads N]
  state-skip compare   --bench <f.bench> --cubes <f.cubes> [L=100] [S=5] [k=10] [--threads N]
  state-skip sweep     <test_set.txt> [L=100]
  state-skip rtl       <test_set.txt> [k=10]
  state-skip gen       <s9234|s13207|s15850|s38417|s38584|mini> <seed>
  state-skip workloads
  state-skip serve     [--addr A=127.0.0.1:7113] [--workers N=auto] [--cache-mb M=256] [--queue N=4*workers] [--store-dir D]
                       [--peers A1,A2,.. --shard-id I] [--replicas R=2] [--max-conns N=256]
  state-skip submit    [--addr A=127.0.0.1:7113 | --addr A1,A2,..] (--workload <name> | --bench <f> --cubes <f> | <set.txt>) [L=100] [S=5] [k=10] [--trace-id T]
  state-skip reconfigure [--addr A1,A2,..] --epoch E --peers P1,P2,..   # swap the fleet's ring live
  state-skip trace     <trace-id> [--addr A1,A2,..]    # stitch one job's spans into a timeline

--threads N caps the engine's worker threads (default: all hardware
threads); results are bit-identical at every thread count.

serve answers repeated submissions of the same workload/config from a
content-addressed artifact cache (bit-identical results, synthesis and
encode skipped); a full queue is answered with an explicit Busy that
submit retries with backoff. With --store-dir the cache gains a
persistent second tier: artifacts are written through to digest-
verified files and survive restarts, so a restarted server answers the
whole corpus without re-running synthesis. submit --workload names a
corpus entry from `state-skip workloads` (paper profiles use their
paper LFSR size). stats with no path prints the serving telemetry of a
running server: per-tier hit/miss counters, store occupancy and
per-phase latency histograms.

A fleet shards the content-key space: start every server with the same
--peers list (the exact addresses clients will use) and its own
--shard-id index, then submit with the comma-separated --addr list —
the client balances each workload to its owning shard and fails over
when shards die. --max-conns bounds concurrent connections per server;
excess connections are shed with a Busy reply instead of a thread.

A replicated fleet self-heals: every cold artifact is pushed to the
next --replicas - 1 shards of its key's rendezvous order (--replicas 1
disables), so killing a shard fails over onto a warm copy instead of
re-running synthesis. reconfigure swaps the fleet's membership without
restarting anything: --addr lists shards of the *current* fleet (one
is enough — epoch gossip converges the rest), --epoch must exceed the
ring's current epoch, and --peers is the complete new address list.
Shards re-replicate the keys whose placement changed.

Every submission through a v6 client carries a trace id (printed on the
result; pin one with --trace-id, hex or decimal). Each server records
spans — queue wait, cache lookups, pipeline phases, replication pushes —
into a bounded ring; trace asks every listed shard for one trace's
spans and stitches them into a single causally ordered timeline, so one
command shows where a job's time went across the whole fleet. stats
--json emits the full telemetry snapshot (per shard plus a fleet
aggregate) as JSON for dashboards and scripts.";

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().cloned().ok_or("missing command")?;
    // only the commands that honour the knob parse it; elsewhere a
    // stray --threads falls through to that command's own argument
    // handling and errors instead of being silently swallowed
    let threads = match command.as_str() {
        "run" | "compare" => take_threads_flag(&mut args)?,
        _ => None,
    };
    match command.as_str() {
        // a path argument means the original local-file statistics;
        // bare `stats` (optionally with --addr) scrapes a server
        "stats" => match args.get(1).map(String::as_str) {
            Some(path) if path != "--addr" => stats(path),
            _ => server_stats(&args[1..]),
        },
        "run" if args.iter().any(|a| a == "--bench" || a == "--cubes") => {
            run_files(&args[1..], threads)
        }
        "run" => cmd_run(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 100)?,
            parse_or(args.get(3), 5)?,
            parse_or(args.get(4), 10)? as u64,
            threads,
        ),
        "compare" if args.iter().any(|a| a == "--bench" || a == "--cubes") => {
            compare_files(&args[1..], threads)
        }
        "compare" => compare(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 100)?,
            parse_or(args.get(3), 5)?,
            parse_or(args.get(4), 10)? as u64,
            threads,
        ),
        "sweep" => sweep(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 100)?,
        ),
        "rtl" => rtl(
            args.get(1).ok_or("missing test set path")?,
            parse_or(args.get(2), 10)? as u64,
        ),
        "gen" => gen(
            args.get(1).ok_or("missing profile name")?,
            parse_or(args.get(2), 1)? as u64,
        ),
        "workloads" => workloads(),
        "serve" => serve(&args[1..]),
        "submit" => submit(&args[1..]),
        "reconfigure" => reconfigure(&args[1..]),
        "trace" => trace_cmd(&args[1..]),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Extracts a `--threads N` flag from anywhere in the argument list.
fn take_threads_flag(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let Some(at) = args.iter().position(|a| a == "--threads") else {
        return Ok(None);
    };
    if at + 1 >= args.len() {
        return Err("--threads needs a count".into());
    }
    let n: usize = args[at + 1]
        .parse()
        .map_err(|_| format!("not a thread count: {:?}", args[at + 1]))?;
    if n == 0 {
        return Err("--threads must be >= 1".into());
    }
    args.drain(at..=at + 1);
    Ok(Some(n))
}

/// Splits `--bench <path> --cubes <path>` out of a flag/positional mix,
/// returning (bench, cubes, positionals).
fn split_flags(args: &[String]) -> Result<(String, String, Vec<&String>), String> {
    let mut bench = None;
    let mut cubes = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => bench = Some(it.next().ok_or("--bench needs a path")?.clone()),
            "--cubes" => cubes = Some(it.next().ok_or("--cubes needs a path")?.clone()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            _ => rest.push(arg),
        }
    }
    Ok((
        bench.ok_or("missing --bench <file>")?,
        cubes.ok_or("missing --cubes <file>")?,
        rest,
    ))
}

fn parse_or(arg: Option<&String>, default: usize) -> Result<usize, String> {
    match arg {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("not a number: {s:?}")),
    }
}

fn load(path: &str) -> Result<TestSet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    TestSet::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn stats(path: &str) -> Result<(), String> {
    let set = load(path)?;
    let s = set.stats();
    println!("geometry:        {}", set.config());
    println!("cubes:           {}", s.cube_count);
    println!("smax:            {}", s.smax);
    println!("total specified: {}", s.total_specified);
    println!("mean specified:  {:.2}", s.mean_specified);
    Ok(())
}

fn engine_for(
    window: usize,
    segment: usize,
    speedup: u64,
    threads: Option<usize>,
) -> Result<Engine, String> {
    let mut builder = Engine::builder()
        .window(window)
        .segment(segment)
        .speedup(speedup);
    if let Some(n) = threads {
        builder = builder.threads(n);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Drops intrinsically unencodable cubes with a note on stderr and
/// pins the LFSR size chosen for the *original* set, so filtering
/// cannot shrink `smax` and silently change the hardware.
fn encodable(engine: &Engine, set: &TestSet) -> Result<(Engine, TestSet), String> {
    let ctx = engine.synthesize(set).map_err(|e| e.to_string())?;
    let (encodable, dropped) = ctx.encodable_subset(set);
    if !dropped.is_empty() {
        eprintln!(
            "note: dropped {} intrinsically unencodable cube(s); raise the LFSR size to keep them",
            dropped.len()
        );
    }
    // copy the FULL config and pin only the LFSR size, so every other
    // knob (ps_taps, hw_seed, ...) carries over to the filtered run
    let mut config = *engine.config();
    config.lfsr_size = Some(ctx.lfsr_size());
    let pinned = Engine::from_config(config).map_err(|e| e.to_string())?;
    Ok((pinned, encodable))
}

fn cmd_run(
    path: &str,
    window: usize,
    segment: usize,
    speedup: u64,
    threads: Option<usize>,
) -> Result<(), String> {
    let set = load(path)?;
    let engine = engine_for(window, segment, speedup, threads)?;
    let (engine, set) = encodable(&engine, &set)?;
    let report = engine.run(&set).map_err(|e| e.to_string())?;
    println!("{}", report.summary());
    println!(
        "hardware: skip {:.0} GE, mode-select {:.0} GE, shared {:.0} GE",
        report.cost.skip_ge(),
        report.cost.mode_select_ge(),
        report.cost.shared_ge()
    );
    Ok(())
}

/// `run --bench <f> --cubes <f>`: ingest a circuit + cube-set pair,
/// run the full State Skip flow, and fault-simulate the decompressed
/// sequences against the circuit.
fn run_files(args: &[String], threads: Option<usize>) -> Result<(), String> {
    let (bench_path, cubes_path, rest) = split_flags(args)?;
    let window = parse_or(rest.first().copied(), 100)?;
    let segment = parse_or(rest.get(1).copied(), 5)?;
    let speedup = parse_or(rest.get(2).copied(), 10)? as u64;

    let bench_text =
        std::fs::read_to_string(&bench_path).map_err(|e| format!("{bench_path}: {e}"))?;
    let cubes_text =
        std::fs::read_to_string(&cubes_path).map_err(|e| format!("{cubes_path}: {e}"))?;
    let workload = parse_workload(&bench_text, &cubes_text).map_err(|e| e.to_string())?;
    let netlist = &workload.circuit.netlist;
    println!(
        "circuit:  {} inputs ({} PIs + {} scan cells), {} gates, {} outputs",
        netlist.input_count(),
        workload.circuit.pi_count,
        workload.circuit.dff_count,
        netlist.gate_count(),
        netlist.outputs().len()
    );
    let stats = workload.set.stats();
    println!(
        "cubes:    {} cubes on {}, smax {}, mean specified {:.1}",
        stats.cube_count,
        workload.set.config(),
        stats.smax,
        stats.mean_specified
    );

    let engine = engine_for(window, segment, speedup, threads)?;
    let (engine, set) = encodable(&engine, &workload.set)?;
    let report = engine.run(&set).map_err(|e| e.to_string())?;
    println!("{}", report.summary());
    let ctx = engine.synthesize(&set).map_err(|e| e.to_string())?;
    let cov = sequence_coverage(netlist, &ctx, &report).map_err(|e| e.to_string())?;
    println!(
        "coverage: {:.2}% of {} collapsed stuck-at faults under State Skip ({} applied vectors); {:.2}% for the full window sequence ({} vectors)",
        cov.applied_coverage * 100.0,
        cov.faults,
        cov.applied_vectors,
        cov.window_coverage * 100.0,
        cov.window_vectors
    );
    Ok(())
}

/// `workloads`: list the named corpus. Profile entries are described
/// from their profile metadata so the listing stays instant — no cube
/// set is materialised.
fn workloads() -> Result<(), String> {
    let mut table = Table::new(["name", "kind", "cubes", "cells", "smax", "description"]);
    for w in WorkloadRegistry::all() {
        let (kind, cubes, cells, smax) = match w.profile() {
            Some(p) => ("profile", p.cube_count, p.scan_config().cells(), p.smax),
            None => {
                let set = w.test_set();
                ("files", set.len(), set.config().cells(), set.smax())
            }
        };
        table.add_row([
            w.name.to_string(),
            kind.to_string(),
            cubes.to_string(),
            cells.to_string(),
            smax.to_string(),
            w.description.to_string(),
        ]);
    }
    println!("{table}");
    println!("file workloads live under crates/testdata/workloads/;");
    println!("run one with: state-skip run --bench <name>.bench --cubes <name>.cubes");
    Ok(())
}

fn compare(
    path: &str,
    window: usize,
    segment: usize,
    speedup: u64,
    threads: Option<usize>,
) -> Result<(), String> {
    let set = load(path)?;
    let engine = engine_for(window, segment, speedup, threads)?;
    let (engine, set) = encodable(&engine, &set)?;
    let schemes: Vec<Box<dyn CompressionScheme>> = vec![
        Box::new(StateSkip),
        Box::new(ClassicalReseeding),
        Box::new(Baseline11),
    ];
    let reports = engine.run_all(&schemes, &set).map_err(|e| e.to_string())?;
    println!("L={window} S={segment} k={speedup}, {} cubes", set.len());
    println!("{}", comparison_table(&reports));
    Ok(())
}

/// `compare --bench <f> --cubes <f>`: the file-ingestion path of
/// `run`, feeding the three-scheme comparison instead of a single
/// report.
fn compare_files(args: &[String], threads: Option<usize>) -> Result<(), String> {
    let (bench_path, cubes_path, rest) = split_flags(args)?;
    let window = parse_or(rest.first().copied(), 100)?;
    let segment = parse_or(rest.get(1).copied(), 5)?;
    let speedup = parse_or(rest.get(2).copied(), 10)? as u64;

    let bench_text =
        std::fs::read_to_string(&bench_path).map_err(|e| format!("{bench_path}: {e}"))?;
    let cubes_text =
        std::fs::read_to_string(&cubes_path).map_err(|e| format!("{cubes_path}: {e}"))?;
    let workload = parse_workload(&bench_text, &cubes_text).map_err(|e| e.to_string())?;

    let engine = engine_for(window, segment, speedup, threads)?;
    let (engine, set) = encodable(&engine, &workload.set)?;
    let schemes: Vec<Box<dyn CompressionScheme>> = vec![
        Box::new(StateSkip),
        Box::new(ClassicalReseeding),
        Box::new(Baseline11),
    ];
    let reports = engine.run_all(&schemes, &set).map_err(|e| e.to_string())?;
    println!(
        "circuit: {} inputs, {} gates; L={window} S={segment} k={speedup}, {} cubes",
        workload.circuit.netlist.input_count(),
        workload.circuit.netlist.gate_count(),
        set.len()
    );
    println!("{}", comparison_table(&reports));
    Ok(())
}

/// Extracts a `--name value` flag from anywhere in the argument list.
fn take_value_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(at) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if at + 1 >= args.len() {
        return Err(format!("{name} needs a value"));
    }
    let value = args[at + 1].clone();
    args.drain(at..=at + 1);
    Ok(Some(value))
}

/// `serve`: run the long-lived compression service in the foreground.
fn serve(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr = take_value_flag(&mut args, "--addr")?
        .unwrap_or_else(|| ss_server::DEFAULT_ADDR.to_string());
    let workers: usize = match take_value_flag(&mut args, "--workers")? {
        Some(v) => v
            .parse()
            .map_err(|_| format!("not a worker count: {v:?}"))?,
        None => 0,
    };
    let cache_mb: usize = match take_value_flag(&mut args, "--cache-mb")? {
        Some(v) => v.parse().map_err(|_| format!("not a cache size: {v:?}"))?,
        None => 256,
    };
    let queue_depth: usize = match take_value_flag(&mut args, "--queue")? {
        Some(v) => v.parse().map_err(|_| format!("not a queue depth: {v:?}"))?,
        None => 0,
    };
    let store_dir = take_value_flag(&mut args, "--store-dir")?.map(std::path::PathBuf::from);
    let max_connections: usize = match take_value_flag(&mut args, "--max-conns")? {
        Some(v) => v
            .parse()
            .map_err(|_| format!("not a connection bound: {v:?}"))?,
        None => 0,
    };
    let replicas: usize = match take_value_flag(&mut args, "--replicas")? {
        Some(v) => {
            let n = v
                .parse()
                .map_err(|_| format!("not a replication factor: {v:?}"))?;
            if n == 0 {
                return Err("--replicas must be >= 1 (1 disables replication)".into());
            }
            n
        }
        None => 0,
    };
    let peers = take_value_flag(&mut args, "--peers")?;
    let shard_id = take_value_flag(&mut args, "--shard-id")?;
    let shard = match (peers, shard_id) {
        (Some(peers), Some(id)) => {
            let id: usize = id.parse().map_err(|_| format!("not a shard id: {id:?}"))?;
            let peers: Vec<String> = peers.split(',').map(str::to_string).collect();
            // boot at epoch 0: a live fleet's epoch only moves through
            // `state-skip reconfigure`, which gossip propagates
            Some(ss_server::ShardSpec {
                peers,
                id,
                epoch: 0,
            })
        }
        (None, None) => None,
        _ => return Err("--peers and --shard-id go together".into()),
    };
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    let server = Server::bind(&ServeOptions {
        addr,
        workers,
        cache_bytes: cache_mb << 20,
        queue_depth,
        store_dir: store_dir.clone(),
        max_connections,
        shard: shard.clone(),
        replicas,
    })
    .map_err(|e| e.to_string())?;
    println!(
        "listening on {} ({} workers, queue {}, cache {} MB{}{})",
        server.local_addr().map_err(|e| e.to_string())?,
        server.workers(),
        server.queue_capacity(),
        cache_mb,
        match &store_dir {
            Some(dir) => format!(", store {}", dir.display()),
            None => String::new(),
        },
        match &shard {
            Some(s) => format!(", shard {}/{} as {}", s.id, s.peers.len(), s.self_addr()),
            None => String::new(),
        }
    );
    // scripts (the CI smoke step) poll stdout for the bound address
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.run().map_err(|e| e.to_string())
}

/// `submit`: send one workload to a running service and wait.
fn submit(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr = take_value_flag(&mut args, "--addr")?
        .unwrap_or_else(|| ss_server::DEFAULT_ADDR.to_string());
    let workload_name = take_value_flag(&mut args, "--workload")?;
    let bench_path = take_value_flag(&mut args, "--bench")?;
    let cubes_path = take_value_flag(&mut args, "--cubes")?;
    let trace_id = match take_value_flag(&mut args, "--trace-id")? {
        Some(v) => Some(parse_trace_id(&v)?),
        None => None,
    };

    // resolve the workload: registry name, .bench + cube pair, or a
    // plain test-set file
    let (label, set, profile_lfsr) = match (&workload_name, &bench_path, &cubes_path) {
        (Some(name), None, None) => {
            let w = WorkloadRegistry::find(name).ok_or_else(|| {
                format!("no corpus workload named {name:?} (see `state-skip workloads`)")
            })?;
            let lfsr = w.profile().map(|p| p.lfsr_size);
            (name.clone(), w.test_set(), lfsr)
        }
        (None, Some(bench), Some(cubes)) => {
            let bench_text = std::fs::read_to_string(bench).map_err(|e| format!("{bench}: {e}"))?;
            let cubes_text = std::fs::read_to_string(cubes).map_err(|e| format!("{cubes}: {e}"))?;
            let workload = parse_workload(&bench_text, &cubes_text).map_err(|e| e.to_string())?;
            (cubes.clone(), workload.set, None)
        }
        (None, None, None) => {
            let path = args
                .first()
                .cloned()
                .ok_or("missing workload: --workload, --bench/--cubes or a test-set path")?;
            args.remove(0);
            (path.clone(), load(&path)?, None)
        }
        _ => return Err("pick one of --workload, --bench + --cubes, or a test-set path".into()),
    };

    let window = parse_or(args.first(), 100)?;
    let segment = parse_or(args.get(1), 5)?;
    let speedup = parse_or(args.get(2), 10)? as u64;
    let mut builder = Engine::builder()
        .window(window)
        .segment(segment)
        .speedup(speedup);
    if let Some(n) = profile_lfsr {
        builder = builder.lfsr_size(n);
    }
    let engine = builder.build().map_err(|e| e.to_string())?;
    let mut spec = JobSpec::new(&set, engine.config());
    if let Some(id) = trace_id {
        spec.trace = TraceContext::root(id);
    }

    // a comma-separated --addr is a fleet: balance to the owning shard
    let (job, report, served_by, trace) = if addr.contains(',') {
        let peers: Vec<String> = addr.split(',').map(str::to_string).collect();
        let mut balancer = ss_server::Balancer::new(peers).map_err(|e| e.to_string())?;
        let run = balancer.run(&spec).map_err(|e| e.to_string())?;
        let served_by = balancer
            .ring()
            .shards()
            .get(run.shard)
            .cloned()
            .unwrap_or_else(|| "redirect target".to_string());
        if run.failovers > 0 {
            eprintln!("note: {} shard(s) failed over", run.failovers);
        }
        (run.job, run.report, served_by, run.trace)
    } else {
        let mut client = Client::connect(&*addr).map_err(|e| e.to_string())?;
        let (job, report) = client.run(&spec).map_err(|e| e.to_string())?;
        let trace = client.last_trace();
        (job, report, addr.clone(), trace)
    };
    println!("submitted {} cubes as job {job} to {served_by}", set.len());
    println!(
        "result: n={} L={} S={} k={}: {} seeds, TDV {} bits, TSL {} -> {} vectors ({:.1}% shorter)",
        report.lfsr_size,
        report.window,
        report.segment,
        report.speedup,
        report.seeds,
        report.tdv,
        report.tsl_original,
        report.tsl_proposed,
        improvement_percent(report.tsl_original, report.tsl_proposed),
    );
    // one greppable line in the golden-corpus format (minus coverage),
    // what the CI smoke step diffs against tests/golden/corpus.txt
    println!(
        "golden: cubes={} lfsr={} seeds={} tdv={} tsl_orig={} tsl_prop={}",
        report.cubes,
        report.lfsr_size,
        report.seeds,
        report.tdv,
        report.tsl_original,
        report.tsl_proposed
    );
    println!(
        "cached={} tier={} dropped={} service_ms={:.1} digest={:016x} ({label})",
        report.cached(),
        tier_name(report.tier),
        report.dropped,
        report.service_micros as f64 / 1e3,
        report.digest
    );
    // v5 servers stamp the reply with the connection's codec tallies
    // (v4 and older leave them zero); tx/rx are the server's view
    let conn = &report.conn;
    if conn.frames_sent + conn.frames_received > 0 {
        println!(
            "link (server view): rx {} frames, {} B wire -> {} B raw; tx {} frames, {} B raw -> {} B wire",
            conn.frames_received,
            conn.wire_rx_bytes,
            conn.raw_rx_bytes,
            conn.frames_sent,
            conn.raw_tx_bytes,
            conn.wire_tx_bytes
        );
    }
    // the line `state-skip trace` and the CI smoke step grep for
    if trace != 0 {
        println!(
            "trace: {trace:#018x} (reconstruct with `state-skip trace {trace:#x} --addr {addr}`)"
        );
    }
    Ok(())
}

/// Parses a trace id: hex with an optional `0x` prefix, or decimal.
fn parse_trace_id(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse::<u64>().or_else(|_| u64::from_str_radix(s, 16))
    };
    match parsed {
        Ok(0) => Err("trace id 0 means untraced".into()),
        Ok(id) => Ok(id),
        Err(_) => Err(format!("not a trace id: {s:?}")),
    }
}

/// `trace`: ask every listed shard for one trace's spans and stitch
/// them into a single causally ordered cross-shard timeline.
fn trace_cmd(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr = take_value_flag(&mut args, "--addr")?
        .unwrap_or_else(|| ss_server::DEFAULT_ADDR.to_string());
    let id_arg = args.first().cloned().ok_or("missing trace id")?;
    args.remove(0);
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    let trace = parse_trace_id(&id_arg)?;
    let mut shards = Vec::new();
    let mut reached = 0usize;
    for a in addr.split(',') {
        match Client::connect(a)
            .and_then(|mut c| c.trace_dump(trace))
            .map_err(|e| e.to_string())
        {
            Ok(dump) => {
                reached += 1;
                if dump.evicted > 0 {
                    eprintln!(
                        "note: {a} evicted {} span(s) under ring pressure; the timeline may have gaps",
                        dump.evicted
                    );
                }
                shards.push(ShardDump {
                    addr: a.to_string(),
                    dump,
                });
            }
            Err(e) => eprintln!("note: {a}: {e}"),
        }
    }
    if reached == 0 {
        return Err("no shard answered the trace dump".into());
    }
    let timeline = stitch(&shards);
    print!("{}", render_timeline(trace, &timeline));
    // denominator = every shard asked, so a dead or unreachable shard
    // reads as a smaller fraction instead of silently shrinking both
    println!(
        "{} span(s) from {} of {} shard(s)",
        timeline.len(),
        shards.iter().filter(|s| !s.dump.spans.is_empty()).count(),
        addr.split(',').count()
    );
    Ok(())
}

/// `reconfigure`: swap the membership of a live fleet — new epoch, new
/// peer list — without restarting any shard. One acknowledgement is
/// enough; epoch gossip between shards converges the rest.
fn reconfigure(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr = take_value_flag(&mut args, "--addr")?
        .unwrap_or_else(|| ss_server::DEFAULT_ADDR.to_string());
    let epoch: u64 = take_value_flag(&mut args, "--epoch")?
        .ok_or("missing --epoch (must exceed the ring's current epoch)")?
        .parse()
        .map_err(|e| format!("not an epoch: {e}"))?;
    let peers: Vec<String> = take_value_flag(&mut args, "--peers")?
        .ok_or("missing --peers (the complete new address list)")?
        .split(',')
        .map(str::to_string)
        .collect();
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    // the --addr list is the fleet as the admin knows it; the balancer
    // broadcasts the new view to old and new members alike and insists
    // on at least one acknowledgement
    let current: Vec<String> = addr.split(',').map(str::to_string).collect();
    let mut balancer = ss_server::Balancer::new(current).map_err(|e| e.to_string())?;
    let acked = balancer
        .reconfigure(epoch, peers)
        .map_err(|e| e.to_string())?;
    println!(
        "fleet reconfigured to epoch {acked}: {}",
        balancer.ring().shards().join(",")
    );
    Ok(())
}

fn tier_name(tier: CacheTier) -> &'static str {
    match tier {
        CacheTier::Cold => "cold",
        CacheTier::Disk => "disk",
        CacheTier::Memory => "memory",
    }
}

/// `stats` without a path: scrape and pretty-print the extended
/// telemetry of a running server.
fn server_stats(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr = take_value_flag(&mut args, "--addr")?
        .unwrap_or_else(|| ss_server::DEFAULT_ADDR.to_string());
    let json = take_bool_flag(&mut args, "--json");
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    if json {
        // machine-readable: the full snapshot of every shard plus the
        // fleet aggregate, one JSON document on stdout
        let mut fleet = Vec::new();
        for a in addr.split(',') {
            let mut client = Client::connect(a).map_err(|e| e.to_string())?;
            let s = client.stats().map_err(|e| e.to_string())?;
            fleet.push((a.to_string(), s));
        }
        println!("{}", stats_json(&fleet));
        return Ok(());
    }
    // a comma-separated --addr scrapes every shard of a fleet in turn,
    // then rolls the per-shard counters into one fleet summary row
    let mut first = true;
    let mut fleet = Vec::new();
    for addr in addr.split(',') {
        if !std::mem::take(&mut first) {
            println!();
        }
        fleet.push(print_server_stats(addr)?);
    }
    if fleet.len() > 1 {
        println!();
        print_fleet_summary(&fleet);
    }
    Ok(())
}

/// Removes a boolean `--name` flag, answering whether it was present.
fn take_bool_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(at) => {
            args.remove(at);
            true
        }
        None => false,
    }
}

/// The cross-shard rollup printed after a fleet scrape: total load,
/// aggregate hit rates and the shed/redirect/replication tallies that
/// tell an operator whether the fleet as a whole is healthy.
fn print_fleet_summary(fleet: &[ss_server::ServerStats]) {
    let sum = |f: fn(&ss_server::ServerStats) -> u64| fleet.iter().map(f).sum::<u64>();
    let hit_rate = |hits: u64, misses: u64| {
        if hits + misses == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", hits as f64 * 100.0 / (hits + misses) as f64)
        }
    };
    let epochs: Vec<u64> = fleet.iter().map(|s| s.epoch).collect();
    let converged = epochs.windows(2).all(|w| w[0] == w[1]);
    println!(
        "fleet of {}: epoch {}  jobs done {}  redirects {}  failbacks pending {}",
        fleet.len(),
        if converged {
            epochs[0].to_string()
        } else {
            // a split epoch view is the one thing an operator must see
            format!("SPLIT {epochs:?}")
        },
        sum(|s| s.jobs_done),
        sum(|s| s.redirects),
        sum(|s| u64::from(s.peers_down)),
    );
    println!(
        "fleet conns: {} active / {} max  shed {}  busy rejections {}",
        sum(|s| u64::from(s.connections_active)),
        sum(|s| u64::from(s.connections_max)),
        sum(|s| s.connections_shed),
        sum(|s| s.busy_rejections),
    );
    println!(
        "fleet cache: memory {} hits / {} misses ({})  disk {} hits / {} misses ({})",
        sum(|s| s.memory.hits),
        sum(|s| s.memory.misses),
        hit_rate(sum(|s| s.memory.hits), sum(|s| s.memory.misses)),
        sum(|s| s.disk.hits),
        sum(|s| s.disk.misses),
        hit_rate(sum(|s| s.disk.hits), sum(|s| s.disk.misses)),
    );
    println!(
        "fleet replication: {} sent  {} received  {} dropped  {} reconfigures",
        sum(|s| s.replicas_sent),
        sum(|s| s.replicas_received),
        sum(|s| s.replica_queue_drops),
        sum(|s| s.reconfigures),
    );
    // merged per-phase latency: one histogram over the whole fleet
    let merged = |f: fn(&ss_server::ServerStats) -> &ss_server::PhaseHistogram| {
        let mut h = ss_server::PhaseHistogram::default();
        for s in fleet {
            h.merge(f(s));
        }
        h
    };
    let synthesis = merged(|s| &s.synthesis);
    println!(
        "fleet synthesis: {} samples  p50 {}  p95 {}  p99 {} ms",
        synthesis.count,
        percentile_ms(&synthesis, 0.50),
        percentile_ms(&synthesis, 0.95),
        percentile_ms(&synthesis, 0.99),
    );
    println!(
        "fleet trace spans: {} recorded  {} evicted",
        sum(|s| s.spans_recorded),
        sum(|s| s.spans_evicted),
    );
}

/// A histogram percentile rendered in milliseconds: `-` with no
/// samples, an overflow marker when the sample fell in the open-ended
/// top bucket.
fn percentile_ms(h: &ss_server::PhaseHistogram, p: f64) -> String {
    if h.count == 0 {
        return "-".to_string();
    }
    let micros = h.percentile_micros(p);
    if micros == u64::MAX {
        ">8388".to_string()
    } else {
        format!("{:.2}", micros as f64 / 1e3)
    }
}

fn print_server_stats(addr: &str) -> Result<ss_server::ServerStats, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let s = client.stats().map_err(|e| e.to_string())?;

    println!("server {addr}");
    println!(
        "workers {}  queue {}/{}  jobs done {}  busy rejections {}  coalesced {}",
        s.workers, s.queued, s.queue_capacity, s.jobs_done, s.busy_rejections, s.coalesced
    );
    if s.shard_count > 0 {
        println!(
            "shard {}/{}  epoch {}  redirects {}",
            s.shard_id, s.shard_count, s.epoch, s.redirects
        );
        println!(
            "replication: {} sent  {} received  {} dropped  reconfigures {}  peers down {}",
            s.replicas_sent,
            s.replicas_received,
            s.replica_queue_drops,
            s.reconfigures,
            s.peers_down
        );
    }
    println!(
        "connections {}/{} active  shed {}",
        s.connections_active, s.connections_max, s.connections_shed
    );
    println!();

    let mut tiers = Table::new([
        "tier", "hits", "misses", "entries", "bytes", "cap", "evicted",
    ]);
    for (name, t) in [("memory", &s.memory), ("disk", &s.disk)] {
        tiers.add_row([
            name.to_string(),
            t.hits.to_string(),
            t.misses.to_string(),
            t.entries.to_string(),
            t.bytes.to_string(),
            if t.capacity_bytes == 0 {
                "-".to_string()
            } else {
                t.capacity_bytes.to_string()
            },
            t.evictions.to_string(),
        ]);
    }
    println!("{tiers}");
    println!(
        "store writes {}  corrupt artifacts detected {}",
        s.store_writes, s.disk_corruptions
    );
    println!();

    let mut phases = Table::new([
        "phase",
        "samples",
        "mean ms",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "total ms",
        "latency buckets",
    ]);
    for (name, h) in [
        ("synthesis", &s.synthesis),
        ("encode", &s.encode),
        ("embed", &s.embed),
        ("segment", &s.segment),
    ] {
        phases.add_row([
            name.to_string(),
            h.count.to_string(),
            format!("{:.2}", h.mean_micros() as f64 / 1e3),
            percentile_ms(h, 0.50),
            percentile_ms(h, 0.95),
            percentile_ms(h, 0.99),
            format!("{:.2}", h.total_micros as f64 / 1e3),
            histogram_sketch(h),
        ]);
    }
    println!("{phases}");
    println!("buckets are log2 microseconds: 2^i <= sample < 2^(i+1); percentiles are bucket upper bounds");
    println!();
    println!(
        "trace spans: {} recorded  {} evicted from the ring",
        s.spans_recorded, s.spans_evicted
    );
    println!();

    let c = &s.codec;
    println!(
        "codec: connections v2 {}  v3 {}  frames out {}  in {}  crc rejects {}",
        c.connections_v2, c.connections_v3, c.frames_sent, c.frames_received, c.crc_rejects
    );
    println!(
        "codec tx: raw {} B -> wire {} B  (ratio {:.2}x, {} B saved)",
        c.raw_tx_bytes,
        c.wire_tx_bytes,
        c.tx_ratio(),
        c.tx_bytes_saved()
    );
    println!(
        "codec rx: raw {} B <- wire {} B",
        c.raw_rx_bytes, c.wire_rx_bytes
    );
    Ok(s)
}

/// Minimal JSON string escape: the snapshot only carries addresses and
/// counter names, but quoting must still be correct for any of them.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One histogram as a JSON object, percentiles included (the open
/// top bucket surfaces as the JSON `null` rather than a fake number).
fn histogram_json(h: &ss_server::PhaseHistogram) -> String {
    let pct = |p: f64| {
        if h.count == 0 {
            "null".to_string()
        } else {
            match h.percentile_micros(p) {
                u64::MAX => "null".to_string(),
                micros => micros.to_string(),
            }
        }
    };
    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
    format!(
        "{{\"count\":{},\"total_micros\":{},\"mean_micros\":{},\"p50_micros\":{},\"p95_micros\":{},\"p99_micros\":{},\"buckets\":[{}]}}",
        h.count,
        h.total_micros,
        h.mean_micros(),
        pct(0.50),
        pct(0.95),
        pct(0.99),
        buckets.join(","),
    )
}

fn tier_json(t: &ss_server::TierStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"entries\":{},\"bytes\":{},\"capacity_bytes\":{},\"evictions\":{}}}",
        t.hits, t.misses, t.entries, t.bytes, t.capacity_bytes, t.evictions,
    )
}

/// One shard's full [`ss_server::ServerStats`] as a JSON object.
fn server_stats_json(s: &ss_server::ServerStats) -> String {
    let c = &s.codec;
    format!(
        concat!(
            "{{\"workers\":{},\"queue_capacity\":{},\"queued\":{},\"jobs_done\":{},",
            "\"busy_rejections\":{},\"coalesced\":{},",
            "\"memory\":{},\"disk\":{},\"store_writes\":{},\"disk_corruptions\":{},",
            "\"phases\":{{\"synthesis\":{},\"encode\":{},\"embed\":{},\"segment\":{}}},",
            "\"codec\":{{\"connections_v2\":{},\"connections_v3\":{},\"frames_sent\":{},",
            "\"frames_received\":{},\"crc_rejects\":{},\"raw_tx_bytes\":{},\"wire_tx_bytes\":{},",
            "\"raw_rx_bytes\":{},\"wire_rx_bytes\":{}}},",
            "\"connections_active\":{},\"connections_max\":{},\"connections_shed\":{},",
            "\"redirects\":{},\"shard_id\":{},\"shard_count\":{},\"epoch\":{},",
            "\"replicas_sent\":{},\"replicas_received\":{},\"replica_queue_drops\":{},",
            "\"reconfigures\":{},\"peers_down\":{},",
            "\"spans_recorded\":{},\"spans_evicted\":{}}}",
        ),
        s.workers,
        s.queue_capacity,
        s.queued,
        s.jobs_done,
        s.busy_rejections,
        s.coalesced,
        tier_json(&s.memory),
        tier_json(&s.disk),
        s.store_writes,
        s.disk_corruptions,
        histogram_json(&s.synthesis),
        histogram_json(&s.encode),
        histogram_json(&s.embed),
        histogram_json(&s.segment),
        c.connections_v2,
        c.connections_v3,
        c.frames_sent,
        c.frames_received,
        c.crc_rejects,
        c.raw_tx_bytes,
        c.wire_tx_bytes,
        c.raw_rx_bytes,
        c.wire_rx_bytes,
        s.connections_active,
        s.connections_max,
        s.connections_shed,
        s.redirects,
        s.shard_id,
        s.shard_count,
        s.epoch,
        s.replicas_sent,
        s.replicas_received,
        s.replica_queue_drops,
        s.reconfigures,
        s.peers_down,
        s.spans_recorded,
        s.spans_evicted,
    )
}

/// The whole `stats --json` document: per-shard snapshots plus a fleet
/// aggregate (sums, and per-phase histograms merged across shards).
fn stats_json(fleet: &[(String, ss_server::ServerStats)]) -> String {
    let shards: Vec<String> = fleet
        .iter()
        .map(|(addr, s)| {
            format!(
                "{{\"addr\":\"{}\",\"stats\":{}}}",
                json_escape(addr),
                server_stats_json(s)
            )
        })
        .collect();
    let sum = |f: fn(&ss_server::ServerStats) -> u64| fleet.iter().map(|(_, s)| f(s)).sum::<u64>();
    let merged = |f: fn(&ss_server::ServerStats) -> &ss_server::PhaseHistogram| {
        let mut h = ss_server::PhaseHistogram::default();
        for (_, s) in fleet {
            h.merge(f(s));
        }
        h
    };
    format!(
        concat!(
            "{{\"shards\":[{}],\"fleet\":{{\"shard_count\":{},\"jobs_done\":{},",
            "\"busy_rejections\":{},\"redirects\":{},\"connections_shed\":{},",
            "\"memory_hits\":{},\"memory_misses\":{},\"disk_hits\":{},\"disk_misses\":{},",
            "\"replicas_sent\":{},\"replicas_received\":{},\"replica_queue_drops\":{},",
            "\"spans_recorded\":{},\"spans_evicted\":{},",
            "\"phases\":{{\"synthesis\":{},\"encode\":{},\"embed\":{},\"segment\":{}}}}}}}",
        ),
        shards.join(","),
        fleet.len(),
        sum(|s| s.jobs_done),
        sum(|s| s.busy_rejections),
        sum(|s| s.redirects),
        sum(|s| s.connections_shed),
        sum(|s| s.memory.hits),
        sum(|s| s.memory.misses),
        sum(|s| s.disk.hits),
        sum(|s| s.disk.misses),
        sum(|s| s.replicas_sent),
        sum(|s| s.replicas_received),
        sum(|s| s.replica_queue_drops),
        sum(|s| s.spans_recorded),
        sum(|s| s.spans_evicted),
        histogram_json(&merged(|s| &s.synthesis)),
        histogram_json(&merged(|s| &s.encode)),
        histogram_json(&merged(|s| &s.embed)),
        histogram_json(&merged(|s| &s.segment)),
    )
}

/// Compact one-line rendering of the nonzero histogram buckets, e.g.
/// `2^10:3 2^11:1` (3 samples in [1024, 2048) us, one in [2048, 4096)).
fn histogram_sketch(h: &ss_server::PhaseHistogram) -> String {
    let parts: Vec<String> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| format!("2^{i}:{n}"))
        .collect();
    if parts.is_empty() {
        "-".to_string()
    } else {
        parts.join(" ")
    }
}

fn sweep(path: &str, window: usize) -> Result<(), String> {
    let set = load(path)?;
    let engine = engine_for(window, 5, 10, None)?;
    let (engine, set) = encodable(&engine, &set)?;
    // encode and embed once; re-plan per (S, k) through the staged
    // artifacts
    let embedded = engine.encode(&set).map_err(|e| e.to_string())?.embed();
    let seeds = embedded.encoding().seeds.len();
    let tdv = embedded.encoding().tdv();
    let tsl_original = embedded.encoding().tsl_original() as u64;
    let mut table = Table::new(["S", "k", "TSL", "improvement"]);
    for segment in [2usize, 5, 10, 20] {
        if segment > window {
            continue;
        }
        let segmented = embedded.clone().segment_with(segment);
        for k in [4u64, 8, 16, 24] {
            let tsl = segmented.tsl_with(k).vectors;
            table.add_row([
                segment.to_string(),
                k.to_string(),
                tsl.to_string(),
                format!("{:.1}%", improvement_percent(tsl_original, tsl)),
            ]);
        }
    }
    println!("window L={window}: {seeds} seeds, TDV {tdv} bits, orig TSL {tsl_original}");
    println!("{table}");
    Ok(())
}

fn rtl(path: &str, speedup: u64) -> Result<(), String> {
    let set = load(path)?;
    let engine = engine_for(1, 1, speedup, None)?;
    let ctx = engine.synthesize(&set).map_err(|e| e.to_string())?;
    let skip = SkipCircuit::new(ctx.lfsr(), speedup).map_err(|e| e.to_string())?;
    print!(
        "{}",
        emit_decompressor_rtl(ctx.lfsr(), &skip, ctx.shifter())
    );
    Ok(())
}

fn gen(profile_name: &str, seed: u64) -> Result<(), String> {
    let profile = match profile_name {
        "s9234" => CubeProfile::s9234(),
        "s13207" => CubeProfile::s13207(),
        "s15850" => CubeProfile::s15850(),
        "s38417" => CubeProfile::s38417(),
        "s38584" => CubeProfile::s38584(),
        "mini" => CubeProfile::mini(),
        other => return Err(format!("unknown profile {other:?}")),
    };
    print!("{}", generate_test_set(&profile, seed).to_text());
    Ok(())
}
