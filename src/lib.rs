//! Umbrella facade over the `state-skip` workspace crates.
//!
//! Re-exports every layer of the reproduction of *"State Skip LFSRs:
//! Bridging the Gap between Test Data Compression and Test Set
//! Embedding for IP Cores"* (Tenentes, Kavousianos, Kalligeros;
//! DATE 2008) under one dependency:
//!
//! * [`gf2`] — dense GF(2) linear algebra
//! * [`lfsr`] — LFSRs, State Skip circuits, phase shifters
//! * [`testdata`] — test cubes, scan geometry, synthetic sets
//! * [`circuit`] — netlists, stuck-at faults, PODEM ATPG
//! * [`core`] — compression schemes and the staged [`core::Engine`]
//! * [`store`] — persistent content-addressed artifact store
//! * [`server`] — the concurrent compression service and its client
//!
//! ```
//! use state_skip::core::Engine;
//! use state_skip::testdata::{generate_test_set, CubeProfile};
//!
//! # fn main() -> Result<(), state_skip::core::SchemeError> {
//! let set = generate_test_set(&CubeProfile::mini(), 1);
//! let engine = Engine::builder().window(24).segment(4).speedup(6).build()?;
//! let report = engine.run(&set)?;
//! assert!(report.tsl_proposed < report.tsl_original);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use ss_circuit as circuit;
pub use ss_core as core;
pub use ss_gf2 as gf2;
pub use ss_lfsr as lfsr;
pub use ss_server as server;
pub use ss_store as store;
pub use ss_testdata as testdata;
