//! Deterministic chaos harness for the self-healing fleet: a seeded
//! fault scheduler kills a shard mid-workload, reconfigures the ring
//! live (removing the dead shard, then rolling a replacement in), and
//! keeps driving balancer clients over the corpus throughout —
//! asserting the three resilience invariants end to end:
//!
//! * every answer stays bit-identical to the uncached golden digests
//!   computed locally, through every fault;
//! * with replication factor 2, killing a shard causes **zero** cold
//!   re-synthesis of previously computed keys — failover lands on a
//!   warm replica (the synthesis counters are pinned exactly);
//! * a `Reconfigure` sent to *one* shard converges the whole fleet —
//!   every surviving shard and the balancer report the new epoch —
//!   without restarting any process, via `Ping`/`Pong` epoch gossip.
//!
//! The schedule is a pure function of `SS_CHAOS_SEED` (default
//! `0xC0FFEE`); `SS_CHAOS_ROUNDS` bounds the extra shuffled-load
//! rounds so CI can run a short soak of the same determinism.

use std::time::{Duration, Instant};

use ss_core::{Encoded, Engine};
use ss_server::{
    cache_key, report_digest, Balancer, Client, JobSpec, RetryPolicy, ServeOptions, Server,
    ServerHandle, ShardRing, ShardSpec, SpanKind, TraceContext,
};
use ss_telemetry::{stitch, ShardDump};
use ss_testdata::{generate_test_set, CubeProfile, TestSet};

const WINDOW: usize = 16;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 4;

/// How long convergence polls may spin before the harness gives up.
const CONVERGE_DEADLINE: Duration = Duration::from_secs(30);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The harness's own deterministic randomness: SplitMix64, so the
/// fault schedule is a pure function of the seed with no dependency
/// on the library's jitter streams.
struct ChaosRng(u64);

impl ChaosRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

fn spec_for(seed: u64) -> JobSpec {
    let set = generate_test_set(&CubeProfile::mini(), seed);
    let engine = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP)
        .build()
        .unwrap();
    JobSpec::new(&set, engine.config())
}

/// The uncached answer, straight through the local engine path.
fn golden_digest(spec: &JobSpec) -> u64 {
    let set = TestSet::from_text(&spec.set_text).unwrap();
    let engine = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP)
        .build()
        .unwrap();
    let ctx = engine.synthesize(&set).unwrap();
    let (encodable, _) = ctx.encodable_subset(&set);
    let report = Encoded::from_ctx_ref(&encodable, &ctx)
        .unwrap()
        .embed()
        .segment()
        .finish()
        .unwrap();
    report_digest(&report)
}

fn bind_shard() -> Server {
    Server::bind(&ServeOptions {
        workers: 1,
        cache_bytes: 64 << 20,
        queue_depth: 8,
        replicas: 2,
        ..ServeOptions::default()
    })
    .unwrap()
}

/// Binds `n` shards on ephemeral ports with replication factor 2,
/// then configures every one with the full fleet list.
fn spawn_fleet(n: usize) -> (Vec<String>, Vec<Option<ServerHandle>>) {
    let servers: Vec<Server> = (0..n).map(|_| bind_shard()).collect();
    let peers: Vec<String> = servers
        .iter()
        .map(|s| s.local_addr().unwrap().to_string())
        .collect();
    let handles = servers
        .into_iter()
        .enumerate()
        .map(|(id, mut server)| {
            server
                .set_shards(ShardSpec {
                    peers: peers.clone(),
                    id,
                    epoch: 0,
                })
                .unwrap();
            Some(server.spawn())
        })
        .collect();
    (peers, handles)
}

fn synthesis_sum<'a, I: IntoIterator<Item = &'a ServerHandle>>(handles: I) -> u64 {
    handles.into_iter().map(|h| h.stats().synthesis.count).sum()
}

fn replicas_received_sum<'a, I: IntoIterator<Item = &'a ServerHandle>>(handles: I) -> u64 {
    handles
        .into_iter()
        .map(|h| h.stats().replicas_received)
        .sum()
}

/// Polls `probe` until it answers true, failing the test with
/// `what` after the convergence deadline.
fn poll_until(what: &str, mut probe: impl FnMut() -> bool) {
    let start = Instant::now();
    while !probe() {
        assert!(
            start.elapsed() < CONVERGE_DEADLINE,
            "gave up waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Runs every spec through the balancer (in the given order) and
/// asserts each answer against its golden digest.
fn drive(balancer: &mut Balancer, order: &[usize], specs: &[JobSpec], goldens: &[u64]) {
    for &i in order {
        let run = balancer.run(&specs[i]).unwrap();
        assert_eq!(
            run.report.digest, goldens[i],
            "fleet answer diverged from the uncached golden"
        );
    }
}

#[test]
fn seeded_chaos_kill_reconfigure_and_rejoin_stay_bit_identical() {
    let seed = env_u64("SS_CHAOS_SEED", 0xC0_FFEE);
    let rounds = env_u64("SS_CHAOS_ROUNDS", 2);
    let mut rng = ChaosRng(seed);

    let (peers, mut handles) = spawn_fleet(3);
    let specs: Vec<JobSpec> = (1..=8).map(spec_for).collect();
    let goldens: Vec<u64> = specs.iter().map(golden_digest).collect();
    let keys: Vec<u64> = specs.iter().map(cache_key).collect();
    let order: Vec<usize> = (0..specs.len()).collect();

    let mut balancer = Balancer::new(peers.clone())
        .unwrap()
        .with_policy(RetryPolicy::seeded(seed).with_deadline(Duration::from_secs(20)));

    // ---- phase 1: warm the fleet, exactly-once cluster-wide --------
    drive(&mut balancer, &order, &specs, &goldens);
    assert_eq!(
        synthesis_sum(handles.iter().flatten()),
        specs.len() as u64,
        "a healthy fleet computes each key cold exactly once"
    );

    // ---- phase 2: write-behind replication settles -----------------
    // R=2 on 3 shards: every key gets exactly one replica push
    poll_until("initial replication to settle", || {
        replicas_received_sum(handles.iter().flatten()) >= specs.len() as u64
    });
    assert_eq!(
        replicas_received_sum(handles.iter().flatten()),
        specs.len() as u64,
        "each key is replicated to exactly one runner-up"
    );

    // ---- phase 3: seeded kill, mid-workload ------------------------
    let victim = rng.below(3);
    let survivor_ids: Vec<usize> = (0..3).filter(|&s| s != victim).collect();
    let pre_kill_synthesis =
        synthesis_sum(survivor_ids.iter().map(|&s| handles[s].as_ref().unwrap()));
    handles[victim].take().unwrap().shutdown();

    // the whole corpus again, seeded order, against a dead shard: every
    // answer golden, and — the replication guarantee — ZERO cold
    // re-synthesis of previously computed keys (failover is warm)
    let mut shuffled = order.clone();
    rng.shuffle(&mut shuffled);
    drive(&mut balancer, &shuffled, &specs, &goldens);
    assert_eq!(
        synthesis_sum(survivor_ids.iter().map(|&s| handles[s].as_ref().unwrap())),
        pre_kill_synthesis,
        "a replicated key was re-synthesized after the shard death"
    );

    // fresh keys still flow: they synthesize once, on a survivor
    let fresh: Vec<JobSpec> = (100..102).map(spec_for).collect();
    let fresh_goldens: Vec<u64> = fresh.iter().map(golden_digest).collect();
    drive(&mut balancer, &[0, 1], &fresh, &fresh_goldens);
    assert_eq!(
        synthesis_sum(survivor_ids.iter().map(|&s| handles[s].as_ref().unwrap())),
        pre_kill_synthesis + fresh.len() as u64,
        "new keys must each cost exactly one cold synthesis"
    );

    // ---- phase 4: Reconfigure removes the dead shard ---------------
    // the new view goes to ONE survivor; gossip must converge the rest
    let survivors: Vec<String> = survivor_ids.iter().map(|&s| peers[s].clone()).collect();
    let told = survivor_ids[rng.below(survivor_ids.len())];
    let mut admin = Client::connect(peers[told].as_str()).unwrap();
    assert_eq!(admin.reconfigure(2, survivors.clone()).unwrap(), 2);

    poll_until("fleet-wide epoch convergence", || {
        survivor_ids
            .iter()
            .all(|&s| handles[s].as_ref().unwrap().stats().epoch == 2)
    });
    // the balancer converges by probing — no restart, no new Balancer
    poll_until("balancer epoch convergence", || {
        balancer.refresh_membership() == 2
    });
    assert_eq!(balancer.epoch(), 2);
    assert_eq!(balancer.ring().len(), 2, "the dead shard left the ring");

    // re-replication on the 2-shard ring gives every survivor every
    // key — memory entries are the observable
    poll_until("post-removal re-replication", || {
        survivor_ids
            .iter()
            .all(|&s| handles[s].as_ref().unwrap().stats().memory.entries >= specs.len() as u64)
    });

    // ---- phase 5: roll a replacement shard into the live fleet -----
    let mut replacement = bind_shard();
    let new_addr = replacement.local_addr().unwrap().to_string();
    let mut joined = survivors.clone();
    joined.push(new_addr.clone());
    // the replacement boots already knowing the joined list (it could
    // not know the epoch an admin will pick; gossip fixes that up)
    replacement
        .set_shards(ShardSpec {
            peers: joined.clone(),
            id: joined.len() - 1,
            epoch: 0,
        })
        .unwrap();
    let new_handle = replacement.spawn();

    // how many keys the new shard must inherit: exactly those whose
    // replica set on the joined ring includes it
    let joined_ring = ShardRing::new(joined.clone()).unwrap();
    let gained = keys
        .iter()
        .filter(|&&k| joined_ring.replicas(k, 2).contains(&new_addr))
        .count() as u64;

    // again: one admin message to one shard, gossip does the rest
    let told = survivor_ids[rng.below(survivor_ids.len())];
    let mut admin = Client::connect(peers[told].as_str()).unwrap();
    assert_eq!(admin.reconfigure(3, joined.clone()).unwrap(), 3);
    poll_until("rejoin epoch convergence", || {
        survivor_ids
            .iter()
            .all(|&s| handles[s].as_ref().unwrap().stats().epoch == 3)
            && new_handle.stats().epoch == 3
            && balancer.refresh_membership() == 3
    });

    // the joining shard is warmed by re-replication, not by traffic
    poll_until("re-replication onto the joining shard", || {
        new_handle.stats().replicas_received >= gained
    });
    assert_eq!(
        new_handle.stats().synthesis.count,
        0,
        "warming a joining shard must cost zero synthesis"
    );

    // the whole corpus over the 3-shard ring: golden answers, and the
    // previously computed keys still never re-synthesize
    let total_before = synthesis_sum(survivor_ids.iter().map(|&s| handles[s].as_ref().unwrap()))
        + new_handle.stats().synthesis.count;
    let mut shuffled = order.clone();
    rng.shuffle(&mut shuffled);
    drive(&mut balancer, &shuffled, &specs, &goldens);
    assert_eq!(
        synthesis_sum(survivor_ids.iter().map(|&s| handles[s].as_ref().unwrap()))
            + new_handle.stats().synthesis.count,
        total_before,
        "a key was re-synthesized after the replacement joined"
    );

    // ---- phase 6: bounded seeded soak — reconfigure mid-load -------
    for round in 0..rounds {
        // an epoch bump with the same membership, sent to a random
        // shard while load runs: answers must stay golden and warm
        let epoch = 4 + round;
        let mut admin = Client::connect(joined[rng.below(joined.len())].as_str()).unwrap();
        assert_eq!(admin.reconfigure(epoch, joined.clone()).unwrap(), epoch);
        let mut shuffled = order.clone();
        rng.shuffle(&mut shuffled);
        drive(&mut balancer, &shuffled, &specs, &goldens);
        poll_until("soak epoch convergence", || {
            survivor_ids
                .iter()
                .all(|&s| handles[s].as_ref().unwrap().stats().epoch == epoch)
                && new_handle.stats().epoch == epoch
        });
    }
    let final_total = synthesis_sum(survivor_ids.iter().map(|&s| handles[s].as_ref().unwrap()))
        + new_handle.stats().synthesis.count;
    assert_eq!(
        final_total, total_before,
        "the soak re-synthesized a warm key"
    );

    // a stale client that never heard any of this still gets golden
    // answers (failover) and can converge by probing
    let mut stale = Balancer::new(peers.clone())
        .unwrap()
        .with_policy(RetryPolicy::seeded(seed ^ 1).with_deadline(Duration::from_secs(20)));
    let run = stale.run(&specs[0]).unwrap();
    assert_eq!(run.report.digest, goldens[0]);
    poll_until("stale balancer convergence", || {
        stale.refresh_membership() >= 3
    });

    new_handle.shutdown();
    for handle in handles.into_iter().flatten() {
        handle.shutdown();
    }
}

/// Pulls the span dump for `trace` from one shard, or panics with the
/// shard's address in the message.
fn dump_from(addr: &str, trace: u64) -> ss_server::SpanDump {
    Client::connect(addr)
        .and_then(|mut c| c.trace_dump(trace))
        .unwrap_or_else(|e| panic!("trace dump from {addr}: {e}"))
}

fn has_kind(dump: &ss_server::SpanDump, kind: SpanKind) -> bool {
    dump.spans.iter().any(|s| s.kind == kind)
}

/// The observability acceptance story: a traced job whose owner is
/// killed mid-workload must still be reconstructable **end to end**
/// from `TraceDump` spans pulled off the surviving shards — the
/// replica's ingest (recorded before the kill), the warm failover
/// serve, and the reconfigure-driven re-replication hop onto the
/// third shard all stitch under the one pinned trace id, which is a
/// pure function of `SS_CHAOS_SEED`.
#[test]
fn traced_job_surviving_a_shard_kill_reconstructs_across_shards() {
    let seed = env_u64("SS_CHAOS_SEED", 0xC0_FFEE);
    let (peers, mut handles) = spawn_fleet(3);
    let mut balancer = Balancer::new(peers.clone())
        .unwrap()
        .with_policy(RetryPolicy::seeded(seed).with_deadline(Duration::from_secs(20)));

    // pin the trace id so the whole story is deterministic in the seed
    // (the balancer keeps a caller-supplied context instead of minting)
    let trace = seed | 1;
    let mut spec = spec_for(42);
    spec.trace = TraceContext::root(trace);
    let golden = golden_digest(&spec);

    // cold run lands on the rendezvous owner and carries the trace
    let cold = balancer.run(&spec).unwrap();
    assert_eq!(cold.report.digest, golden);
    assert_eq!(cold.trace, trace, "balancer must keep the pinned trace");
    assert_eq!(cold.report.trace, trace, "the report echoes the trace id");
    let owner = cold.shard;

    // the write-behind push delivers the key — trace attached — to the
    // runner-up replica before the fault fires
    poll_until("replication of the traced key", || {
        replicas_received_sum(handles.iter().flatten()) >= 1
    });

    // kill the owner: its span ring dies with it; what survives is
    // exactly what the trace already propagated to other processes
    handles[owner].take().unwrap().shutdown();
    let survivor_ids: Vec<usize> = (0..3).filter(|&s| s != owner).collect();

    // the same traced job resubmitted mid-kill: failover serves it
    // warm off the replica, under the same trace id
    let warm = balancer.run(&spec).unwrap();
    assert_eq!(warm.report.digest, golden, "failover answer diverged");
    assert_eq!(warm.trace, trace);
    assert!(
        warm.failovers >= 1,
        "the dead owner must cost a failover hop"
    );
    let serving = warm.shard;
    assert_ne!(serving, owner, "a dead shard cannot have served the job");
    let other = survivor_ids
        .iter()
        .copied()
        .find(|&s| s != serving)
        .unwrap();

    // shrink the ring to the survivor pair: placement changes push the
    // key — originating trace still attached — onto the last shard
    let survivors: Vec<String> = survivor_ids.iter().map(|&s| peers[s].clone()).collect();
    let mut admin = Client::connect(peers[serving].as_str()).unwrap();
    assert_eq!(admin.reconfigure(2, survivors).unwrap(), 2);
    poll_until(
        "re-replication to carry the trace to the last shard",
        || {
            has_kind(
                &dump_from(peers[other].as_str(), trace),
                SpanKind::ReplicaIngest,
            )
        },
    );

    // ---- reconstruct end to end from the surviving rings -----------
    let mut shards: Vec<ShardDump> = survivor_ids
        .iter()
        .map(|&s| ShardDump {
            addr: peers[s].clone(),
            dump: dump_from(peers[s].as_str(), trace),
        })
        .collect();
    shards.push(ShardDump {
        addr: "client".to_string(),
        dump: balancer.local_dump(),
    });

    let contributing = shards
        .iter()
        .filter(|s| s.dump.spans.iter().any(|sp| sp.trace == trace))
        .count();
    assert!(
        contributing >= 3,
        "expected spans from the client and both surviving shards, got {contributing}"
    );

    // the serving replica tells the whole survival story: the ingest
    // recorded before the kill, the warm failover serve, and the
    // re-replication push that rebalanced the key afterwards
    let serving_dump = &shards[survivor_ids.iter().position(|&s| s == serving).unwrap()].dump;
    for kind in [
        SpanKind::ReplicaIngest,
        SpanKind::RecvDecode,
        SpanKind::QueueWait,
        SpanKind::CacheMemory,
        SpanKind::Embed,
        SpanKind::Segment,
        SpanKind::CodecTx,
        SpanKind::ReplicatePush,
    ] {
        assert!(
            has_kind(serving_dump, kind),
            "serving replica is missing a {kind} span for the trace"
        );
    }
    assert!(
        serving_dump.spans.iter().all(|s| s.trace == trace),
        "a trace-filtered dump leaked spans from another trace"
    );
    assert_eq!(
        serving_dump.evicted, 0,
        "the span ring must not have evicted"
    );

    // the balancer's own spans cover both submissions and the hop
    let client_dump = &shards.last().unwrap().dump;
    assert!(
        client_dump
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::ClientSubmit)
            .count()
            >= 2,
        "both the cold and the warm run must record a client-submit span"
    );
    assert!(has_kind(client_dump, SpanKind::FailoverHop));

    // stitching is causally ordered: the ingest that saved the key
    // precedes the warm cache hit that served it after the kill
    let timeline = stitch(&shards);
    assert!(!timeline.is_empty());
    assert!(
        timeline
            .windows(2)
            .all(|w| w[0].abs_start_micros <= w[1].abs_start_micros),
        "stitched timeline is not time-ordered"
    );
    let pos = |kind: SpanKind, addr: &str| {
        timeline
            .iter()
            .position(|e| e.span.kind == kind && e.addr == addr)
            .unwrap_or_else(|| panic!("no {kind} span from {addr} in the timeline"))
    };
    let serving_addr = peers[serving].as_str();
    assert!(
        pos(SpanKind::ReplicaIngest, serving_addr) < pos(SpanKind::CacheMemory, serving_addr),
        "the replica ingest must precede the warm hit it made possible"
    );

    for handle in handles.into_iter().flatten() {
        handle.shutdown();
    }
}
