//! The staged `Engine` / `CompressionScheme` API surface:
//! bit-equivalence with the legacy `Pipeline`, trait-object dispatch,
//! batch drivers and the unified error chain.

use std::error::Error;

use proptest::prelude::*;

use ss_core::{
    comparison_table, Baseline11, ClassicalReseeding, CompressionScheme, Engine, Pipeline,
    PipelineConfig, SchemeError, SchemeReport, SocPlan, StateSkip,
};
use ss_testdata::{generate_test_set, CubeProfile, TestSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The new Engine reproduces the legacy `Pipeline::run()` exactly —
    /// bit-identical seeds and identical TSL accounting — across
    /// window/segment/speedup/fill choices on `CubeProfile::mini()`.
    #[test]
    fn engine_matches_legacy_pipeline_bit_for_bit(
        set_seed in 1u64..6,
        window in 8usize..40,
        segment_raw in 1usize..8,
        speedup in 1u64..24,
        fill_seed in 1u64..100,
    ) {
        let segment = segment_raw.min(window);
        let set = generate_test_set(&CubeProfile::mini(), set_seed);
        let config = PipelineConfig {
            window,
            segment,
            speedup,
            fill_seed,
            ..PipelineConfig::default()
        };
        let legacy = Pipeline::new(&set, config).unwrap().run().unwrap();
        let engine = Engine::builder()
            .window(window)
            .segment(segment)
            .speedup(speedup)
            .fill_seed(fill_seed)
            .build()
            .unwrap();
        let staged = engine.run(&set).unwrap();

        // bit-identical seeds (the strongest statement: the staged path
        // and the monolithic path computed the very same encoding)
        prop_assert_eq!(&staged.encoding, &legacy.encoding);
        for (a, b) in staged.encoding.seeds.iter().zip(&legacy.encoding.seeds) {
            prop_assert_eq!(&a.seed, &b.seed);
        }
        // identical TSL accounting and cost model inputs
        prop_assert_eq!(staged.tsl_original, legacy.tsl_original);
        prop_assert_eq!(staged.tsl_truncated, legacy.tsl_truncated);
        prop_assert_eq!(staged.tsl_proposed, legacy.tsl_proposed);
        prop_assert_eq!(staged.tdv, legacy.tdv);
        prop_assert_eq!(staged.seeds, legacy.seeds);
        prop_assert_eq!(&staged.plan, &legacy.plan);
        prop_assert_eq!(&staged.tsl_report, &legacy.tsl_report);
    }
}

fn mini_engine() -> (TestSet, Engine) {
    let set = generate_test_set(&CubeProfile::mini(), 1);
    let engine = Engine::builder()
        .window(30)
        .segment(5)
        .speedup(6)
        .build()
        .unwrap();
    (set, engine)
}

#[test]
fn all_schemes_dispatch_through_trait_objects() {
    let (set, engine) = mini_engine();
    let schemes: Vec<Box<dyn CompressionScheme>> = vec![
        Box::new(StateSkip),
        Box::new(ClassicalReseeding),
        Box::new(Baseline11),
    ];
    let reports: Vec<SchemeReport> = engine.run_all(&schemes, &set).unwrap();
    assert_eq!(reports.len(), 3);
    assert_eq!(reports[0].scheme, "state-skip");
    assert_eq!(reports[1].scheme, "classical-reseeding");
    assert_eq!(reports[2].scheme, "baseline-11");
    for report in &reports {
        assert!(report.seeds > 0);
        assert_eq!(report.tdv, report.seeds * report.lfsr_size);
        assert!(report.tsl <= report.tsl_original);
    }
    // the family ordering the paper's tables show: classical reseeding
    // has the shortest sequence but the largest storage; state skip
    // shortens the windowed sequence below truncation-only embedding
    assert!(reports[0].tsl <= reports[2].tsl);
    assert!(reports[1].tdv >= reports[0].tdv);

    let table = comparison_table(&reports);
    assert_eq!(table.row_count(), 3);
    let text = table.to_string();
    for report in &reports {
        assert!(text.contains(&report.scheme), "{text}");
    }
}

#[test]
fn run_all_agrees_with_individual_scheme_runs() {
    let (set, engine) = mini_engine();
    let schemes: Vec<Box<dyn CompressionScheme>> = vec![
        Box::new(StateSkip),
        Box::new(ClassicalReseeding),
        Box::new(Baseline11),
    ];
    let batch = engine.run_all(&schemes, &set).unwrap();
    for (scheme, from_batch) in schemes.iter().zip(&batch) {
        let solo = engine.run_scheme(scheme.as_ref(), &set).unwrap();
        assert_eq!(&solo, from_batch, "parallel batch must equal solo runs");
    }
}

#[test]
fn state_skip_scheme_report_matches_the_full_engine_report() {
    let (set, engine) = mini_engine();
    let scheme_report = engine.run_scheme(&StateSkip, &set).unwrap();
    let full = engine.run(&set).unwrap();
    assert_eq!(scheme_report.seeds, full.seeds);
    assert_eq!(scheme_report.tdv, full.tdv);
    assert_eq!(scheme_report.tsl_original, full.tsl_original);
    assert_eq!(scheme_report.tsl, full.tsl_proposed);
    assert!((scheme_report.improvement_percent() - full.improvement_percent).abs() < 1e-9);
}

#[test]
fn baseline11_scheme_agrees_with_the_legacy_function() {
    let (set, engine) = mini_engine();
    let report = engine.run_scheme(&Baseline11, &set).unwrap();
    let full = engine.run(&set).unwrap();
    assert_eq!(report.tsl, ss_core::baseline11_tsl(&full.embedding));
}

#[test]
fn classical_scheme_agrees_with_the_legacy_function() {
    let (set, engine) = mini_engine();
    let report = engine.run_scheme(&ClassicalReseeding, &set).unwrap();
    let legacy = ss_core::classical_reseeding(
        &set,
        None,
        engine.config().hw_seed,
        engine.config().fill_seed,
    )
    .unwrap();
    assert_eq!(report.seeds, legacy.encoding.seeds.len());
    assert_eq!(report.tdv, legacy.tdv());
    assert_eq!(report.tsl, legacy.tsl() as u64);
}

#[test]
fn soc_run_batch_parallels_the_section4_study() {
    let (_, engine) = mini_engine();
    let cores: Vec<(String, TestSet)> = [1u64, 2, 3]
        .iter()
        .map(|&s| {
            (
                format!("core-{s}"),
                generate_test_set(&CubeProfile::mini(), s),
            )
        })
        .collect();
    let plan = SocPlan::run_batch(&engine, &cores).unwrap();
    assert_eq!(plan.cores().len(), 3);
    assert!(plan.total_ge() < plan.unshared_ge(), "sharing must win");
    let solo = engine.run(&cores[0].1).unwrap();
    assert_eq!(plan.cores()[0].tsl, solo.tsl_proposed);
}

#[test]
fn scheme_errors_chain_their_sources() {
    let (set, _) = mini_engine();
    // an LFSR pinned far below smax cannot encode: the error must be
    // a SchemeError whose chain bottoms out in the layer that failed
    let tiny = Engine::builder()
        .window(10)
        .segment(2)
        .lfsr_size(set.smax().saturating_sub(2).max(3))
        .build()
        .unwrap();
    let err = tiny.run(&set).unwrap_err();
    match &err {
        SchemeError::BadConfig(msg) => assert!(msg.contains("smax"), "{msg}"),
        other => {
            // encodable geometry but unencodable cubes: must chain
            assert!(other.source().is_some(), "{other} must expose a source");
        }
    }
    // builder validation also reports through the same type
    let invalid = Engine::builder().window(0).build().unwrap_err();
    assert!(invalid.to_string().contains("window"));
}

#[test]
fn engine_is_reusable_across_test_sets() {
    let (_, engine) = mini_engine();
    let a = generate_test_set(&CubeProfile::mini(), 1);
    let b = generate_test_set(&CubeProfile::mini(), 2);
    let report_a1 = engine.run(&a).unwrap();
    let _report_b = engine.run(&b).unwrap();
    let report_a2 = engine.run(&a).unwrap();
    assert_eq!(
        report_a1.tsl_proposed, report_a2.tsl_proposed,
        "no hidden state"
    );
}
