//! Property tests pinning the overhauled encoder search — incremental
//! residue caching plus parallel candidate probing — **bit-identical**
//! to the pre-overhaul reference search (`encode_reference`): same
//! seeds, same placements, for random workloads across window sizes,
//! fill seeds and thread counts, plus an exhaustive registry check.
//!
//! The cached search replaces the reference's probing engine but not
//! its greedy decisions; since probe outcomes (conflict / added rank)
//! are invariants of the equation sets, any divergence here is a bug
//! in the residue cache, the free-space projection, the truth-table
//! tier or the parallel merge — exactly the machinery this suite
//! exists to guard.

use proptest::prelude::*;

use ss_core::{Engine, ExprTable, WindowEncoder};
use ss_gf2::primitive_poly;
use ss_lfsr::{Lfsr, PhaseShifter};
use ss_testdata::{generate_test_set, CubeProfile, WorkloadRegistry};

fn table_for(set: &ss_testdata::TestSet, n: usize, window: usize, hw_seed: u64) -> ExprTable {
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(hw_seed);
    let lfsr = Lfsr::fibonacci(primitive_poly(n).expect("tabulated degree"));
    let shifter = PhaseShifter::synthesize(n, set.config().chains(), 3, &mut rng)
        .expect("synthesizable shifter");
    ExprTable::build(&lfsr, &shifter, set.config(), window)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cached and parallel searches reproduce the reference encoding
    /// exactly for random workloads x window in {1, 8, 24} x threads
    /// in {1, 4}.
    #[test]
    fn cached_and_parallel_encoders_match_reference_exactly(
        set_seed in any::<u64>(),
        fill_seed in any::<u64>(),
        window_idx in 0usize..3,
        extra_bits in 0usize..24,
    ) {
        let window = [1usize, 8, 24][window_idx];
        let profile = CubeProfile::mini();
        let set = generate_test_set(&profile, set_seed);
        // n sweeps across all three probing tiers as extra_bits grows
        let n = (set.smax() + 4 + extra_bits).clamp(3, 64);
        let table = table_for(&set, n, window, 2);
        let encoder = WindowEncoder::new(&set, &table).expect("one geometry");

        // drop cubes that cannot be encoded alone (either both paths
        // fail identically, or we compare full encodings)
        match encoder.encode_reference(fill_seed) {
            Err(err) => {
                prop_assert_eq!(encoder.encode(fill_seed).unwrap_err(), err);
            }
            Ok(reference) => {
                for threads in [1usize, 4] {
                    let cached = encoder
                        .encode_with_threads(fill_seed, threads)
                        .expect("reference encoded, cached must too");
                    prop_assert_eq!(
                        &cached, &reference,
                        "threads={} window={} n={}", threads, window, n
                    );
                }
            }
        }
    }
}

/// Every registry workload encodes bit-identically to the reference at
/// the golden knobs, at 1 and 4 threads (profiles are scaled down to
/// keep the reference affordable; the `encode_scaling` bench covers
/// the full bench scale).
#[test]
fn registry_workloads_encode_bit_identically_at_any_thread_count() {
    for workload in WorkloadRegistry::all() {
        let set = if workload.profile().is_some() {
            workload.test_set_scaled(0.05)
        } else {
            workload.test_set()
        };
        let mut builder = Engine::builder().window(24).segment(4).speedup(6);
        if let Some(profile) = workload.profile() {
            builder = builder.lfsr_size(profile.lfsr_size);
        }
        let engine = builder.build().expect("golden knobs are valid");
        let ctx = engine.synthesize(&set).expect("synthesis succeeds");
        let (set, _) = ctx.encodable_subset(&set);
        let encoder = WindowEncoder::new(&set, ctx.table()).expect("one geometry");
        let reference = encoder
            .encode_reference(engine.config().fill_seed)
            .expect("registry workloads encode");
        for threads in [1usize, 4] {
            assert_eq!(
                encoder
                    .encode_with_threads(engine.config().fill_seed, threads)
                    .expect("registry workloads encode"),
                reference,
                "{}: diverged at {} threads",
                workload.name,
                threads
            );
        }
    }
}

/// The golden corpus file is untouched by the encoder overhaul: the
/// engine's seed counts and TSL numbers at the golden knobs still
/// match the checked-in values (the full pinning lives in
/// `tests/golden_corpus.rs`; this is the encoder-level cross-check
/// that seeds drive those numbers).
#[test]
fn golden_corpus_numbers_flow_from_reference_identical_seeds() {
    let workload = WorkloadRegistry::find("mini-13").expect("registry entry");
    let set = workload.test_set();
    let engine = Engine::builder()
        .window(24)
        .segment(4)
        .speedup(6)
        .build()
        .expect("golden knobs are valid");
    let ctx = engine.synthesize(&set).expect("synthesis succeeds");
    let (set, _) = ctx.encodable_subset(&set);
    let encoder = WindowEncoder::new(&set, ctx.table()).expect("one geometry");
    let reference = encoder
        .encode_reference(engine.config().fill_seed)
        .expect("encodes");
    let report = engine.run(&set).expect("engine runs");
    assert_eq!(report.seeds, reference.seeds.len());
    assert_eq!(report.tdv, reference.tdv());
    assert_eq!(report.tsl_original, reference.tsl_original() as u64);
}
