//! Fuzz-style property harness over the two text ingestion surfaces —
//! `.bench` netlists (`ss_circuit::parse_bench`) and `.cubes` test
//! sets (`ss_testdata::TestSet::from_text`) — driven by seeded random
//! mutations of the real workload corpus plus pure garbage.
//!
//! The contract mirrors `crates/store/src/proptests.rs` and the wire
//! proptests: whatever bytes arrive, the parsers never panic and every
//! rejection is a typed, displayable error. Deterministic throughout
//! (seeded `SmallRng`, no wall-clock); `SS_FUZZ_CASES` scales the
//! case count per corpus file for soak runs.

use std::fmt::Write as _;
use std::path::PathBuf;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ss_circuit::parse_bench;
use ss_testdata::TestSet;

const BASE_SEED: u64 = 0xF0CC_ED0F_1E57_0001;

const CORPUS: [&str; 4] = ["tiny-1", "tiny-pad", "mini-7", "mini-13"];

fn cases_per_file() -> u64 {
    std::env::var("SS_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150)
}

fn corpus_text(name: &str, ext: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates/testdata/workloads")
        .join(format!("{name}.{ext}"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// One seeded mutation of a corpus text: truncation, bit flips, byte
/// insertion, a splice of two texts, or wholesale garbage.
fn mutate(text: &str, other: &str, rng: &mut SmallRng) -> String {
    let mut bytes = text.as_bytes().to_vec();
    match rng.gen_range(0..5u32) {
        0 => {
            // truncate somewhere, possibly mid-line, possibly mid-char
            let cut = rng.gen_range(0..=bytes.len());
            bytes.truncate(cut);
        }
        1 => {
            // flip a handful of random bits
            for _ in 0..rng.gen_range(1..8u32) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        2 => {
            // insert a short run of random bytes at a random point
            let at = rng.gen_range(0..=bytes.len());
            let run: Vec<u8> = (0..rng.gen_range(1..24u32)).map(|_| rng.gen()).collect();
            bytes.splice(at..at, run);
        }
        3 => {
            // splice: head of this text, tail of the other
            let head = rng.gen_range(0..=bytes.len());
            let tail = rng.gen_range(0..=other.len());
            bytes.truncate(head);
            bytes.extend_from_slice(&other.as_bytes()[other.len() - tail..]);
        }
        _ => {
            // forget the corpus: pure garbage of modest size
            bytes = (0..rng.gen_range(0..512u32)).map(|_| rng.gen()).collect();
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Every parse attempt must be a clean `Ok` or a typed error whose
/// `Display` works; a panic fails the test by unwinding.
fn exercise(input: &str) {
    let mut sink = String::new();
    if let Err(err) = parse_bench(input) {
        write!(sink, "{err}").expect("bench error displays");
        assert!(!sink.is_empty(), "bench parse error displayed as nothing");
    }
    sink.clear();
    if let Err(err) = TestSet::from_text(input) {
        write!(sink, "{err}").expect("cube error displays");
        assert!(!sink.is_empty(), "cube parse error displayed as nothing");
    }
}

/// Sanity: the pristine corpus parses, so the fuzz below is mutating
/// inputs the parsers genuinely accept.
#[test]
fn pristine_corpus_parses() {
    for name in CORPUS {
        let circuit = parse_bench(&corpus_text(name, "bench"))
            .unwrap_or_else(|e| panic!("{name}.bench: {e}"));
        assert!(circuit.netlist.input_count() > 0, "{name}.bench is empty");
        let set = TestSet::from_text(&corpus_text(name, "cubes"))
            .unwrap_or_else(|e| panic!("{name}.cubes: {e}"));
        assert!(!set.cubes().is_empty(), "{name}.cubes is empty");
    }
}

/// Seeded mutations of every corpus file, fed to both parsers: never
/// a panic, always a typed displayable error on rejection.
#[test]
fn mutated_corpus_never_panics_either_parser() {
    let cases = cases_per_file();
    for ext in ["bench", "cubes"] {
        for (at, name) in CORPUS.iter().enumerate() {
            let text = corpus_text(name, ext);
            let other = corpus_text(CORPUS[(at + 1) % CORPUS.len()], ext);
            for case in 0..cases {
                let seed = BASE_SEED ^ ((at as u64) << 32) ^ ((ext.len() as u64) << 24) ^ case;
                let mut rng = SmallRng::seed_from_u64(seed);
                exercise(&mutate(&text, &other, &mut rng));
            }
        }
    }
}

/// Cross-format confusion: each format's pristine text pushed through
/// the *other* parser — a classic operator mistake (wrong file flag)
/// that must be a typed rejection, not a crash or a silent accept of
/// nonsense.
#[test]
fn cross_format_inputs_are_rejected_with_typed_errors() {
    for name in CORPUS {
        let bench = corpus_text(name, "bench");
        let cubes = corpus_text(name, "cubes");
        let err = TestSet::from_text(&bench).expect_err("a netlist is not a cube file");
        assert!(!err.to_string().is_empty());
        let err = parse_bench(&cubes).expect_err("a cube file is not a netlist");
        assert!(!err.to_string().is_empty());
    }
}
