//! End-to-end integration: circuit -> ATPG -> encoding -> State Skip
//! traversal -> decompressor -> fault coverage.
//!
//! This is the strongest correctness statement in the workspace: the
//! *shortened* test sequence produced by the State Skip architecture
//! detects the same faults as the uncompacted test set it encodes.

use ss_circuit::{
    generate_uncompacted_test_set, random_circuit, AtpgConfig, CircuitSpec, FaultList,
    FaultSimulator,
};
use ss_core::{Decompressor, Pipeline, PipelineConfig};
use ss_testdata::{ScanConfig, TestCube, TestSet};

fn build_test_set(circuit: &ss_circuit::Netlist, chains: usize, seed: u64) -> TestSet {
    let outcome = generate_uncompacted_test_set(circuit, &AtpgConfig::default(), seed);
    let scan = ScanConfig::for_cells(chains, circuit.input_count()).unwrap();
    let mut set = TestSet::new(scan);
    for cube in &outcome.cubes {
        let mut padded = TestCube::all_x(scan.cells());
        for (i, bit) in cube.iter_specified() {
            padded.set(i, bit);
        }
        set.push(padded).unwrap();
    }
    set.drop_covered();
    set
}

#[test]
fn shortened_sequence_preserves_fault_coverage() {
    let circuit = random_circuit(&CircuitSpec::tiny(), 21);
    let set = build_test_set(&circuit, 4, 21);
    assert!(!set.is_empty());

    let config = PipelineConfig {
        window: 30,
        segment: 5,
        speedup: 6,
        ..PipelineConfig::default()
    };
    let pipeline = Pipeline::new(&set, config).unwrap();
    let report = pipeline.run().unwrap();
    let mut decompressor = Decompressor::new(
        pipeline.lfsr().clone(),
        config.speedup,
        pipeline.shifter().clone(),
        set.config(),
        report.mode_select.clone(),
    );
    let trace = decompressor.run(&report.encoding, &report.plan);
    assert!(trace.covers(&set), "every cube must be applied");

    // fault coverage of the applied sequence vs the raw cube set
    let faults = FaultList::collapsed(&circuit);
    let fsim = FaultSimulator::new(&circuit);
    let applied: Vec<Vec<bool>> = trace
        .vectors
        .iter()
        .map(|v| (0..circuit.input_count()).map(|i| v.get(i)).collect())
        .collect();
    let coverage_applied = fsim.coverage(&faults, &applied);

    // reference: the cubes random-filled (what the test set guarantees)
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
    let reference: Vec<Vec<bool>> = set
        .iter()
        .map(|c| {
            let full = c.random_fill(&mut rng);
            (0..circuit.input_count()).map(|i| full.get(i)).collect()
        })
        .collect();
    let coverage_reference = fsim.coverage(&faults, &reference);

    assert!(
        coverage_applied >= coverage_reference - 0.02,
        "applied sequence coverage {coverage_applied} fell below reference {coverage_reference}"
    );
}

#[test]
fn tsl_improves_with_speedup() {
    // Exact-landing traversal spends floor(G/k) skips + G mod k normal
    // clocks, so TSL is not strictly monotone in k (the remainder can
    // grow); the guaranteed property is TSL(k) <= TSL(1) and a large k
    // being strictly better than none.
    let circuit = random_circuit(&CircuitSpec::tiny(), 5);
    let set = build_test_set(&circuit, 4, 5);
    let run = |k: u64| {
        let config = PipelineConfig {
            window: 24,
            segment: 4,
            speedup: k,
            ..PipelineConfig::default()
        };
        // this workload can contain intrinsically unencodable cubes at
        // the default LFSR size; drop them as the bench harness does,
        // pinning the LFSR size so the filtered re-run keeps the exact
        // hardware the filter was computed against
        let probe = Pipeline::new(&set, config).unwrap();
        let pinned = PipelineConfig {
            lfsr_size: Some(probe.lfsr().size()),
            ..config
        };
        let (encodable, _) = probe.encodable_subset();
        Pipeline::new(&encodable, pinned)
            .unwrap()
            .run()
            .unwrap()
            .tsl_proposed
    };
    let baseline = run(1);
    for k in [2u64, 4, 8, 16] {
        assert!(
            run(k) <= baseline,
            "k={k}: TSL {} exceeds the k=1 baseline {baseline}",
            run(k)
        );
    }
    if baseline > 8 {
        assert!(
            run(16) < baseline,
            "a 16x skip should strictly shorten {baseline}"
        );
    }
}

#[test]
fn tdv_is_invariant_under_segment_and_speedup() {
    // the reduction step never touches the seeds: TDV must be identical
    // for every (S, k) at fixed L
    let circuit = random_circuit(&CircuitSpec::tiny(), 9);
    let set = build_test_set(&circuit, 4, 9);
    let mut tdv = None;
    for (s, k) in [(2usize, 3u64), (4, 6), (8, 12)] {
        let config = PipelineConfig {
            window: 24,
            segment: s,
            speedup: k,
            ..PipelineConfig::default()
        };
        let report = Pipeline::new(&set, config).unwrap().run().unwrap();
        match tdv {
            None => tdv = Some(report.tdv),
            Some(t) => assert_eq!(t, report.tdv, "TDV changed at S={s} k={k}"),
        }
    }
}
