//! Concurrent artifact-reuse property: N client threads hammering the
//! service with a mix of repeated and fresh workloads receive results
//! **bit-identical to an uncached `Engine::run`**, at every worker
//! count — and no job is ever lost to backpressure (a `Busy` rejection
//! is retried, never dropped).
//!
//! The reference for every workload is computed locally through the
//! exact path the server runs cold (synthesize → drop intrinsically
//! unencodable cubes → pin the LFSR size → run), then every served
//! result — cold, cached, or coalesced with a concurrent identical
//! job — must match it field for field and digest for digest.

use std::collections::HashMap;
use std::sync::Mutex;

use ss_core::Engine;
use ss_server::{report_digest, Client, JobSpec, ServeOptions, Server};
use ss_testdata::{TestSet, WorkloadRegistry};

const WINDOW: usize = 24;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 6;
const CLIENTS: usize = 5;
const SUBMISSIONS_PER_CLIENT: usize = 6;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// What an uncached run of a workload must produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Expected {
    digest: u64,
    lfsr_size: usize,
    seeds: usize,
    tdv: usize,
    tsl_original: u64,
    tsl_proposed: u64,
    dropped: usize,
}

/// The corpus slice the clients fan over: the file workloads full
/// size, one paper profile scaled — small enough for a debug-build
/// test, varied enough to mix cache hits, misses and coalesced jobs.
fn workload_specs() -> Vec<(String, TestSet, Option<usize>)> {
    let mut specs = Vec::new();
    for name in ["tiny-1", "tiny-pad", "mini-7"] {
        let w = WorkloadRegistry::find(name).expect("registry entry");
        specs.push((name.to_string(), w.test_set(), None));
    }
    let w = WorkloadRegistry::find("s13207").expect("registry entry");
    specs.push((
        "s13207@0.1".to_string(),
        w.test_set_scaled(0.1),
        Some(w.profile().expect("profile entry").lfsr_size),
    ));
    specs
}

fn engine_for(lfsr: Option<usize>) -> Engine {
    let mut builder = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP);
    if let Some(n) = lfsr {
        builder = builder.lfsr_size(n);
    }
    builder.build().expect("test knobs are valid")
}

/// The uncached reference: the CLI `run` path, no server, no cache.
fn uncached_reference(set: &TestSet, lfsr: Option<usize>) -> Expected {
    let engine = engine_for(lfsr);
    let ctx = engine.synthesize(set).expect("synthesis succeeds");
    let (encodable, dropped) = ctx.encodable_subset(set);
    let mut config = *engine.config();
    config.lfsr_size = Some(ctx.lfsr_size());
    let pinned = Engine::from_config(config).expect("pinned config is valid");
    let report = pinned.run(&encodable).expect("engine run succeeds");
    Expected {
        digest: report_digest(&report),
        lfsr_size: report.lfsr_size,
        seeds: report.seeds,
        tdv: report.tdv,
        tsl_original: report.tsl_original,
        tsl_proposed: report.tsl_proposed,
        dropped: dropped.len(),
    }
}

#[test]
fn hammered_cache_is_bit_identical_to_uncached_runs_at_every_worker_count() {
    let specs: Vec<(String, JobSpec, Expected)> = workload_specs()
        .into_iter()
        .map(|(name, set, lfsr)| {
            let expected = uncached_reference(&set, lfsr);
            let spec = JobSpec::new(&set, engine_for(lfsr).config());
            (name, spec, expected)
        })
        .collect();

    for workers in WORKER_COUNTS {
        // a deliberately tight queue so backpressure actually fires
        // under the client fan-out and the retry path is exercised
        let handle = Server::bind(&ServeOptions {
            workers,
            queue_depth: 2,
            ..ServeOptions::default()
        })
        .expect("bind loopback")
        .spawn();

        let cached_seen: Mutex<HashMap<String, u64>> = Mutex::new(HashMap::new());
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let specs = &specs;
                let cached_seen = &cached_seen;
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..SUBMISSIONS_PER_CLIENT {
                        // deterministic schedule, different per
                        // client: repeats collide across threads while
                        // fresh keys keep arriving
                        let (name, spec, expected) = &specs[(c + i * 3) % specs.len()];
                        let (_, report) = client.run(spec).expect("submission retried past Busy");
                        assert_eq!(
                            report.digest, expected.digest,
                            "{name} (workers={workers}, client={c}): served digest \
                             diverged from the uncached Engine::run"
                        );
                        assert_eq!(report.lfsr_size as usize, expected.lfsr_size, "{name}");
                        assert_eq!(report.seeds as usize, expected.seeds, "{name}");
                        assert_eq!(report.tdv as usize, expected.tdv, "{name}");
                        assert_eq!(report.tsl_original, expected.tsl_original, "{name}");
                        assert_eq!(report.tsl_proposed, expected.tsl_proposed, "{name}");
                        assert_eq!(report.dropped as usize, expected.dropped, "{name}");
                        *cached_seen
                            .lock()
                            .expect("cache counter")
                            .entry(name.clone())
                            .or_insert(0) += u64::from(report.cached());
                    }
                });
            }
        });

        let total = (CLIENTS * SUBMISSIONS_PER_CLIENT) as u64;
        let stats = handle.stats();
        assert_eq!(
            stats.jobs_done, total,
            "workers={workers}: the server lost jobs under concurrent load"
        );
        // every workload is submitted more than once, so the cache
        // must have served a hit for each (coalesced jobs included)
        let cached_seen = cached_seen.into_inner().expect("cache counter");
        for (name, _, _) in &specs {
            assert!(
                cached_seen.get(name).copied().unwrap_or(0) > 0,
                "workers={workers}: {name} was never served from the cache"
            );
        }
        handle.shutdown();
    }
}
