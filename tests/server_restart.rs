//! Warm-restart property of the persistent artifact tier: a server
//! restarted on a populated `--store-dir` serves every workload
//! **bit-identically** to both the cold run that populated it and an
//! uncached local `Engine::run` — without paying synthesis or encode
//! again — and a corrupted artifact file is detected, counted and
//! recomputed, never served and never a panic.

use std::path::{Path, PathBuf};

use ss_core::Engine;
use ss_server::{report_digest, CacheTier, Client, JobSpec, ServeOptions, Server};
use ss_store::ArtifactStore;
use ss_testdata::{TestSet, WorkloadRegistry};

const WINDOW: usize = 24;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 6;

fn store_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss-restart-{test}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn corpus() -> Vec<(String, TestSet)> {
    ["tiny-1", "tiny-pad", "mini-7"]
        .iter()
        .map(|name| {
            let w = WorkloadRegistry::find(name).expect("registry entry");
            (name.to_string(), w.test_set())
        })
        .collect()
}

fn engine() -> Engine {
    Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP)
        .build()
        .expect("test knobs are valid")
}

/// The uncached reference digest: the CLI `run` path, no server.
fn reference_digest(set: &TestSet) -> u64 {
    let engine = engine();
    let ctx = engine.synthesize(set).expect("synthesis succeeds");
    let (encodable, _) = ctx.encodable_subset(set);
    let mut config = *engine.config();
    config.lfsr_size = Some(ctx.lfsr_size());
    let pinned = Engine::from_config(config).expect("pinned config is valid");
    report_digest(&pinned.run(&encodable).expect("engine run succeeds"))
}

fn serve(dir: &Path) -> ss_server::ServerHandle {
    Server::bind(&ServeOptions {
        workers: 2,
        store_dir: Some(dir.to_path_buf()),
        ..ServeOptions::default()
    })
    .expect("bind loopback with store dir")
    .spawn()
}

#[test]
fn restarted_server_serves_the_corpus_from_disk_bit_identically() {
    let dir = store_dir("warm");
    let corpus = corpus();
    let specs: Vec<(String, JobSpec, u64)> = corpus
        .iter()
        .map(|(name, set)| {
            (
                name.clone(),
                JobSpec::new(set, engine().config()),
                reference_digest(set),
            )
        })
        .collect();

    // --- generation 1: every workload runs cold and is written through
    let handle = serve(&dir);
    let mut client = Client::connect(handle.addr()).expect("connect");
    for (name, spec, expected) in &specs {
        let (_, report) = client.run(spec).expect("cold run succeeds");
        assert_eq!(report.tier, CacheTier::Cold, "{name} must run cold");
        assert_eq!(report.digest, *expected, "{name} cold digest");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.store_writes, specs.len() as u64);
    assert_eq!(stats.disk.entries as usize, specs.len());
    handle.shutdown();

    // --- generation 2: a fresh process image, same store dir
    let handle = serve(&dir);
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.disk.entries as usize,
        specs.len(),
        "warm-start index must see every stored artifact"
    );
    for (name, spec, expected) in &specs {
        let (_, report) = client.run(spec).expect("warm run succeeds");
        assert_eq!(
            report.tier,
            CacheTier::Disk,
            "{name} must be served from the persistent tier"
        );
        assert!(report.cached(), "{name} disk tier counts as cached");
        assert_eq!(report.digest, *expected, "{name} must be bit-identical");
    }
    // a resubmission now hits the memory tier (disk hits promote)
    let (_, again) = client.run(&specs[0].1).expect("resubmission succeeds");
    assert_eq!(again.tier, CacheTier::Memory);
    assert_eq!(again.digest, specs[0].2);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.disk.hits, specs.len() as u64);
    assert_eq!(stats.disk_corruptions, 0);
    assert_eq!(stats.store_writes, 0, "nothing ran cold, nothing written");
    assert_eq!(
        stats.synthesis.count, 0,
        "a warm restart must never re-pay synthesis"
    );
    assert_eq!(stats.encode.count, 0, "...nor the encode stage");
    assert!(
        stats.embed.count >= specs.len() as u64,
        "the cheap stages re-ran for every disk hit"
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_artifact_is_detected_counted_and_recomputed() {
    let dir = store_dir("corrupt");
    let (_, set) = corpus().remove(0);
    let spec = JobSpec::new(&set, engine().config());
    let expected = reference_digest(&set);

    let handle = serve(&dir);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (_, cold) = client.run(&spec).expect("cold run succeeds");
    assert_eq!(cold.digest, expected);
    handle.shutdown();

    // flip one byte in the middle of the stored artifact
    let store = ArtifactStore::open(&dir).expect("reopen store");
    let keys = store.keys().expect("scan keys");
    assert_eq!(keys.len(), 1, "exactly one artifact stored");
    let path = store.path_for(keys[0].0);
    let mut bytes = std::fs::read(&path).expect("read artifact file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite artifact file");

    let handle = serve(&dir);
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    let (_, report) = client.run(&spec).expect("run after corruption succeeds");
    assert_eq!(
        report.tier,
        CacheTier::Cold,
        "a corrupt artifact must fall back to cold compute"
    );
    assert_eq!(report.digest, expected, "the recomputed answer is right");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.disk_corruptions, 1, "the corruption was counted");
    assert_eq!(stats.disk.evictions, 1, "...and the bad file evicted");
    assert_eq!(
        stats.store_writes, 1,
        "the recomputed artifact was written back"
    );
    // the write-back healed the store: a third generation serves warm
    handle.shutdown();
    let handle = serve(&dir);
    let mut client = Client::connect(handle.addr()).expect("third connect");
    let (_, healed) = client.run(&spec).expect("healed run succeeds");
    assert_eq!(healed.tier, CacheTier::Disk);
    assert_eq!(healed.digest, expected);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
