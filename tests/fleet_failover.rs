//! Fleet failover acceptance test: a 3-shard serving tier is fed a
//! workload through the balancer, one shard is killed mid-workload,
//! and every job must still complete with answers bit-identical to
//! the uncached golden digests computed locally — the paper's flow is
//! deterministic end to end, so failover may change *where* a job
//! runs but never *what* it answers.
//!
//! Also pinned here, end to end over real sockets: exactly-once
//! cluster-wide cold computation (the ring sends every key to one
//! owner), the redirect contract for misrouted plain submissions, and
//! the legacy local-serve fallback for pre-v4 peers.

use std::time::Duration;

use ss_core::{Encoded, Engine};
use ss_server::{
    cache_key, report_digest, Balancer, Client, ClientError, JobSpec, RetryPolicy, ServeOptions,
    Server, ServerHandle, ShardSpec,
};
use ss_testdata::{generate_test_set, CubeProfile, TestSet};

const WINDOW: usize = 16;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 4;

fn spec_for(seed: u64) -> JobSpec {
    let set = generate_test_set(&CubeProfile::mini(), seed);
    let engine = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP)
        .build()
        .unwrap();
    JobSpec::new(&set, engine.config())
}

/// The uncached answer, straight through the local engine path.
fn golden_digest(spec: &JobSpec) -> u64 {
    let set = TestSet::from_text(&spec.set_text).unwrap();
    let engine = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP)
        .build()
        .unwrap();
    let ctx = engine.synthesize(&set).unwrap();
    let (encodable, _) = ctx.encodable_subset(&set);
    let report = Encoded::from_ctx_ref(&encodable, &ctx)
        .unwrap()
        .embed()
        .segment()
        .finish()
        .unwrap();
    report_digest(&report)
}

/// Binds `n` shards on ephemeral ports, then configures every one
/// with the full fleet address list before spawning.
fn spawn_fleet(n: usize) -> (Vec<String>, Vec<Option<ServerHandle>>) {
    let servers: Vec<Server> = (0..n)
        .map(|_| {
            Server::bind(&ServeOptions {
                workers: 1,
                cache_bytes: 64 << 20,
                queue_depth: 8,
                // replication off: this test pins the *unreplicated*
                // exactly-once arithmetic (a legacy fallback recomputes,
                // a dead shard's keys recompute on the failover target);
                // the replicated counterpart lives in fleet_chaos.rs
                replicas: 1,
                ..ServeOptions::default()
            })
            .unwrap()
        })
        .collect();
    let peers: Vec<String> = servers
        .iter()
        .map(|s| s.local_addr().unwrap().to_string())
        .collect();
    let handles = servers
        .into_iter()
        .enumerate()
        .map(|(id, mut server)| {
            server
                .set_shards(ShardSpec {
                    peers: peers.clone(),
                    id,
                    epoch: 0,
                })
                .unwrap();
            Some(server.spawn())
        })
        .collect();
    (peers, handles)
}

fn fleet_synthesis_count(handles: &[Option<ServerHandle>]) -> u64 {
    handles
        .iter()
        .flatten()
        .map(|h| h.stats().synthesis.count)
        .sum()
}

#[test]
fn killing_a_shard_mid_workload_keeps_answers_bit_identical() {
    let (peers, mut handles) = spawn_fleet(3);
    let specs: Vec<JobSpec> = (1..=6).map(spec_for).collect();
    let goldens: Vec<u64> = specs.iter().map(golden_digest).collect();

    let mut balancer = Balancer::new(peers.clone())
        .unwrap()
        .with_policy(RetryPolicy::seeded(11).with_deadline(Duration::from_secs(20)));

    // round 1: a healthy fleet routes every key to its ring owner and
    // answers the golden digest
    let mut owners = Vec::new();
    for (spec, golden) in specs.iter().zip(&goldens) {
        let run = balancer.run(spec).unwrap();
        assert_eq!(run.report.digest, *golden, "fleet answer diverged");
        assert_eq!(run.failovers, 0, "healthy fleet must not fail over");
        assert_eq!(
            run.shard,
            balancer.ring().owner(cache_key(spec)),
            "job served off its owning shard"
        );
        owners.push(run.shard);
    }
    assert!(
        owners.iter().any(|&s| s != owners[0]),
        "6 keys all landed on one shard — the ring is not spreading"
    );

    // exactly-once cluster-wide: 6 distinct keys, 6 cold syntheses
    // across the whole fleet, no matter which shards served them
    assert_eq!(fleet_synthesis_count(&handles), 6);

    // a plain v4 submission to a non-owner is redirected to the owner,
    // and nothing runs on the wrong shard
    let spec0 = &specs[0];
    let owner0 = owners[0];
    let non_owner = (0..3).find(|&s| s != owner0).unwrap();
    let mut direct_client = Client::connect(peers[non_owner].as_str()).unwrap();
    match direct_client.submit(spec0) {
        Err(ClientError::Redirected(addr)) => assert_eq!(addr, peers[owner0]),
        other => panic!("non-owner answered {other:?} instead of a redirect"),
    }
    assert_eq!(fleet_synthesis_count(&handles), 6);

    // a legacy (pre-v4) peer can't parse redirects: the non-owner
    // serves it locally, bit-identically — at-least-once, never wrong
    let mut legacy = Client::connect_legacy(peers[non_owner].as_str()).unwrap();
    let (_, legacy_report) = legacy.run(spec0).unwrap();
    assert_eq!(legacy_report.digest, goldens[0]);
    assert_eq!(
        fleet_synthesis_count(&handles),
        7,
        "the legacy fallback recomputes locally, once"
    );

    // kill spec0's owner mid-workload
    handles[owner0].take().unwrap().shutdown();

    // round 2: the old keys plus fresh ones; every job must complete
    // on a surviving shard with the same digests
    let more_specs: Vec<JobSpec> = (7..=12).map(spec_for).collect();
    let more_goldens: Vec<u64> = more_specs.iter().map(golden_digest).collect();
    for (spec, golden) in specs
        .iter()
        .zip(&goldens)
        .chain(more_specs.iter().zip(&more_goldens))
    {
        let run = balancer.run(spec).unwrap();
        assert_eq!(
            run.report.digest, *golden,
            "failover changed an answer bit-for-bit"
        );
        assert_ne!(
            run.shard, owner0,
            "a job was served by the shard that was killed"
        );
    }

    for handle in handles.into_iter().flatten() {
        handle.shutdown();
    }
}
