//! Paper-level qualitative properties, checked on scaled-down
//! workloads: the *shapes* of Fig. 4 and Tables 1-2 (monotonicity in
//! k, S and L) that the full bench harness reproduces quantitatively.

use ss_core::{improvement_percent, Pipeline, PipelineConfig};
use ss_testdata::{generate_test_set, CubeProfile, TestSet};

fn mini_set() -> TestSet {
    generate_test_set(&CubeProfile::mini(), 40)
}

fn run(set: &TestSet, window: usize, segment: usize, speedup: u64) -> ss_core::PipelineReport {
    let config = PipelineConfig {
        window,
        segment,
        speedup,
        ..PipelineConfig::default()
    };
    Pipeline::new(set, config).unwrap().run().unwrap()
}

#[test]
fn improvement_grows_with_k_fig4_bars() {
    // Fig. 4: TSL improvement increases with the speedup factor k.
    // Exact-landing traversal spends floor(G/k) skips + G mod k normal
    // clocks, so the trend has small remainder wobbles; allow the same
    // 2-point tolerance as the L trend below.
    let set = mini_set();
    let mut prev = -1.0f64;
    for k in [3u64, 6, 12, 24] {
        let report = run(&set, 40, 4, k);
        assert!(
            report.improvement_percent >= prev - 2.0,
            "k={k}: improvement {:.2} dropped below {:.2}",
            report.improvement_percent,
            prev
        );
        prev = report.improvement_percent;
    }
    assert!(
        prev > 30.0,
        "k=24 improvement should be substantial, got {prev:.1}%"
    );
}

#[test]
fn smaller_segments_improve_tsl_fig4_s_trend() {
    // Fig. 4: finer segmentation (smaller S) yields higher improvement
    let set = mini_set();
    let coarse = run(&set, 40, 20, 8);
    let fine = run(&set, 40, 4, 8);
    assert!(
        fine.tsl_proposed <= coarse.tsl_proposed,
        "S=4 TSL {} must not exceed S=20 TSL {}",
        fine.tsl_proposed,
        coarse.tsl_proposed
    );
}

#[test]
fn larger_windows_improve_more_fig4_l_trend() {
    // Fig. 4 curves: larger L -> more useless segments -> higher
    // improvement percentage
    let set = mini_set();
    let small = run(&set, 20, 5, 8);
    let large = run(&set, 60, 5, 8);
    assert!(
        large.improvement_percent >= small.improvement_percent - 2.0,
        "L=60 improvement {:.1}% below L=20 {:.1}%",
        large.improvement_percent,
        small.improvement_percent
    );
}

#[test]
fn window_size_trades_tdv_for_tsl_table1() {
    // Table 1: larger windows reduce TDV but inflate the raw TSL
    let set = mini_set();
    let l10 = run(&set, 10, 5, 8);
    let l60 = run(&set, 60, 5, 8);
    assert!(l60.tdv <= l10.tdv, "TDV must shrink with L");
    assert!(
        l60.tsl_original >= l10.tsl_original,
        "raw TSL must grow with L"
    );
}

#[test]
fn proposed_tsl_sits_between_truncation_and_original() {
    let set = mini_set();
    let report = run(&set, 40, 5, 10);
    assert!(report.tsl_proposed <= report.tsl_truncated);
    assert!(report.tsl_truncated <= report.tsl_original);
    // and the improvement is computed by relation (2)
    let expected = improvement_percent(report.tsl_original, report.tsl_proposed);
    assert!((report.improvement_percent - expected).abs() < 1e-9);
}

#[test]
fn same_tdv_for_proposed_and_original_table2_note() {
    // "both approaches have the same test data volumes"
    let set = mini_set();
    let a = run(&set, 40, 4, 4);
    let b = run(&set, 40, 8, 24);
    assert_eq!(a.tdv, b.tdv);
    assert_eq!(a.tsl_original, b.tsl_original);
}

#[test]
fn golden_mini_run_is_bit_stable() {
    // Pins full-flow determinism: any unintended change to the RNG
    // plumbing, the encoder's tie-breaks or the plan selection shows up
    // here as a changed seed count / TDV / TSL triple. If a deliberate
    // algorithm change moves these numbers, update them consciously.
    let set = mini_set();
    let a = run(&set, 40, 5, 10);
    let b = run(&set, 40, 5, 10);
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.tsl_proposed, b.tsl_proposed);
    assert_eq!(a.encoding, b.encoding);
    assert_eq!(a.tdv, a.seeds * a.lfsr_size);
    // loose envelope so profile recalibration does not thrash this test
    assert!(a.seeds >= 2 && a.seeds <= 20, "seeds {}", a.seeds);
    assert!(a.improvement_percent > 20.0);
}

#[test]
fn skip_circuit_cost_grows_mildly_with_k_section4() {
    use ss_gf2::primitive_poly;
    use ss_lfsr::{Lfsr, SkipCircuit};
    let lfsr = Lfsr::fibonacci(primitive_poly(24).unwrap());
    let g12 = SkipCircuit::new(&lfsr, 12)
        .unwrap()
        .synthesize()
        .gate_count();
    let g32 = SkipCircuit::new(&lfsr, 32)
        .unwrap()
        .synthesize()
        .gate_count();
    assert!(g32 >= g12, "cost should not shrink with k");
    assert!(
        g32 <= 4 * g12.max(12),
        "shared network must grow sub-quadratically: {g12} -> {g32}"
    );
}
