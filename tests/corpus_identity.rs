//! Corpus provenance: every checked-in file workload under
//! `crates/testdata/workloads/` is bit-identical to what its recorded
//! [`FileProvenance`] regenerates.
//!
//! This is the acceptance property of the workload corpus: the
//! on-disk `.bench` + cube files are not hand-maintained artifacts but
//! a deterministic function of (generator spec, circuit seed, ATPG
//! seed, chain count). Run with `SS_REGEN_CORPUS=1` to rewrite the
//! files from provenance (after intentionally changing a seed or the
//! generator), then commit the result:
//!
//! ```text
//! SS_REGEN_CORPUS=1 cargo test --test corpus_identity
//! ```

use std::path::PathBuf;

use ss_circuit::{
    generate_uncompacted_test_set, random_circuit, write_bench, AtpgConfig, CircuitSpec, Netlist,
};
use ss_testdata::{ScanConfig, TestCube, TestSet, WorkloadRegistry};

/// Rebuilds a file workload's circuit and cube set from provenance.
fn regenerate(
    spec: &CircuitSpec,
    circuit_seed: u64,
    atpg_seed: u64,
    chains: usize,
) -> (Netlist, TestSet) {
    let circuit = random_circuit(spec, circuit_seed);
    let outcome = generate_uncompacted_test_set(&circuit, &AtpgConfig::default(), atpg_seed);
    let scan = ScanConfig::for_cells(chains, circuit.input_count())
        .expect("provenance chain counts are nonzero");
    let mut set = TestSet::new(scan);
    for cube in &outcome.cubes {
        let mut padded = TestCube::all_x(scan.cells());
        for (i, bit) in cube.iter_specified() {
            padded.set(i, bit);
        }
        set.push(padded).expect("padded cubes match the geometry");
    }
    (circuit, set)
}

fn workloads_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates")
        .join("testdata")
        .join("workloads")
}

#[test]
fn corpus_files_match_their_provenance() {
    let regen = std::env::var("SS_REGEN_CORPUS").is_ok_and(|v| !v.is_empty() && v != "0");
    for w in WorkloadRegistry::all() {
        let Some(prov) = w.provenance() else { continue };
        let spec = CircuitSpec::by_name(prov.spec)
            .unwrap_or_else(|| panic!("{}: unknown spec {:?}", w.name, prov.spec));
        let (circuit, set) = regenerate(&spec, prov.circuit_seed, prov.atpg_seed, prov.chains);
        let bench_text = write_bench(&circuit, w.name);
        let cubes_text = format!(
            "# {} (spec {}, atpg seed {})\n{}",
            w.name,
            prov.spec,
            prov.atpg_seed,
            set.to_text()
        );

        if regen {
            let dir = workloads_dir();
            std::fs::write(dir.join(format!("{}.bench", w.name)), &bench_text)
                .expect("corpus dir is writable");
            std::fs::write(dir.join(format!("{}.cubes", w.name)), &cubes_text)
                .expect("corpus dir is writable");
            continue;
        }

        assert_eq!(
            w.bench_text().unwrap(),
            bench_text,
            "{}: checked-in .bench drifted from provenance (SS_REGEN_CORPUS=1 to rewrite)",
            w.name
        );
        assert_eq!(
            w.cubes_text().unwrap(),
            cubes_text,
            "{}: checked-in cube set drifted from provenance (SS_REGEN_CORPUS=1 to rewrite)",
            w.name
        );
    }
}

/// The embedded files round-trip through the parsers back to the exact
/// generator-built structures — the "bit-identical to the
/// generator-built equivalents" acceptance criterion.
#[test]
fn corpus_files_parse_back_to_generator_structures() {
    for w in WorkloadRegistry::all() {
        let Some(prov) = w.provenance() else { continue };
        let spec = CircuitSpec::by_name(prov.spec).unwrap();
        let (circuit, set) = regenerate(&spec, prov.circuit_seed, prov.atpg_seed, prov.chains);
        let parsed = ss_circuit::parse_bench(w.bench_text().unwrap())
            .unwrap_or_else(|e| panic!("{}: embedded .bench does not parse: {e}", w.name));
        assert_eq!(parsed.netlist, circuit, "{}: netlist drifted", w.name);
        assert_eq!(
            parsed.dff_count, 0,
            "{}: corpus circuits are full-scan",
            w.name
        );
        assert_eq!(w.test_set(), set, "{}: cube set drifted", w.name);
    }
}
