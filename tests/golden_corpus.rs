//! Golden conformance harness: every registry workload runs through
//! `Engine::run` (and the three-scheme `comparison_table`) and must
//! reproduce the checked-in numbers in `tests/golden/corpus.txt`
//! exactly — seed counts, TDV, TSL before/after State Skip, and (for
//! file workloads) the stuck-at coverage of the applied sequence.
//!
//! Golden values are deliberately exact, not toleranced: the whole
//! flow is deterministic, so any drift is a behaviour change that must
//! be either fixed or consciously re-pinned. To re-pin after an
//! intentional change:
//!
//! ```text
//! SS_REGEN_GOLDEN=1 cargo test --test golden_corpus
//! ```
//!
//! and commit the rewritten `tests/golden/corpus.txt`.
//!
//! Engine knobs are fixed at `L=24, S=4, k=6`; profile workloads use
//! their paper LFSR size and run at scale 0.1 (the corpus prefix
//! contract — see `Workload::test_set_scaled`) to keep the harness
//! fast; file workloads run full size with the default (smax-derived)
//! LFSR.

use std::fmt::Write as _;
use std::path::PathBuf;

use ss_core::{
    comparison_table, parse_workload, sequence_coverage, Baseline11, ClassicalReseeding,
    CompressionScheme, Engine, StateSkip,
};
use ss_testdata::{TestSet, Workload, WorkloadRegistry};

const WINDOW: usize = 24;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 6;
const PROFILE_SCALE: f64 = 0.1;

/// One measured golden row.
#[derive(Debug, PartialEq)]
struct GoldenRow {
    name: String,
    cubes: usize,
    lfsr: usize,
    seeds: usize,
    tdv: usize,
    tsl_original: u64,
    tsl_proposed: u64,
    /// Applied-sequence stuck-at coverage in basis points (exact
    /// integer, avoids float formatting drift); -1 for profile
    /// workloads (no netlist to simulate).
    coverage_bp: i64,
}

impl GoldenRow {
    fn to_line(&self) -> String {
        format!(
            "{} cubes={} lfsr={} seeds={} tdv={} tsl_orig={} tsl_prop={} coverage_bp={}",
            self.name,
            self.cubes,
            self.lfsr,
            self.seeds,
            self.tdv,
            self.tsl_original,
            self.tsl_proposed,
            self.coverage_bp
        )
    }
}

fn engine_for(w: &Workload) -> Engine {
    let mut builder = Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP);
    if let Some(profile) = w.profile() {
        builder = builder.lfsr_size(profile.lfsr_size);
    }
    builder.build().expect("golden knobs are valid")
}

fn workload_set(w: &Workload) -> TestSet {
    if w.profile().is_some() {
        w.test_set_scaled(PROFILE_SCALE)
    } else {
        w.test_set()
    }
}

/// Runs one workload through the staged engine exactly like the CLI
/// `run` path: synthesize once, drop intrinsically unencodable cubes
/// against pinned hardware, run all stages.
fn measure(w: &Workload) -> GoldenRow {
    let set = workload_set(w);
    let engine = engine_for(w);
    let ctx = engine.synthesize(&set).expect("synthesis succeeds");
    let (encodable, _) = ctx.encodable_subset(&set);
    let lfsr_size = ctx.lfsr_size();
    let mut config = *engine.config();
    config.lfsr_size = Some(lfsr_size);
    let engine = Engine::from_config(config).expect("pinned config is valid");
    let report = engine.run(&encodable).expect("engine run succeeds");

    // the comparison table must agree with the report on the State
    // Skip row (cheap cross-check that run_all and run share numbers)
    let schemes: Vec<Box<dyn CompressionScheme>> = vec![
        Box::new(StateSkip),
        Box::new(ClassicalReseeding),
        Box::new(Baseline11),
    ];
    let reports = engine.run_all(&schemes, &encodable).expect("schemes run");
    let table = comparison_table(&reports).to_string();
    assert!(
        table.contains(&report.tsl_proposed.to_string()),
        "{}: comparison table lost the State Skip TSL",
        w.name
    );

    let coverage_bp = match w.bench_text() {
        None => -1,
        Some(bench) => {
            let loaded = parse_workload(bench, w.cubes_text().unwrap())
                .unwrap_or_else(|e| panic!("{}: corpus pair invalid: {e}", w.name));
            let ctx = engine.synthesize(&encodable).expect("synthesis succeeds");
            let cov = sequence_coverage(&loaded.circuit.netlist, &ctx, &report)
                .unwrap_or_else(|e| panic!("{}: coverage failed: {e}", w.name));
            (cov.applied_coverage * 10_000.0).round() as i64
        }
    };

    GoldenRow {
        name: w.name.to_string(),
        cubes: set.len(),
        lfsr: lfsr_size,
        seeds: report.seeds,
        tdv: report.tdv,
        tsl_original: report.tsl_original,
        tsl_proposed: report.tsl_proposed,
        coverage_bp,
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("corpus.txt")
}

#[test]
fn registry_workloads_match_golden_values() {
    let rows: Vec<GoldenRow> = WorkloadRegistry::all().iter().map(measure).collect();

    let mut rendered = String::new();
    writeln!(
        rendered,
        "# golden corpus numbers: L={WINDOW} S={SEGMENT} k={SPEEDUP}, profiles at scale {PROFILE_SCALE}"
    )
    .unwrap();
    writeln!(
        rendered,
        "# regenerate with: SS_REGEN_GOLDEN=1 cargo test --test golden_corpus"
    )
    .unwrap();
    for row in &rows {
        writeln!(rendered, "{}", row.to_line()).unwrap();
    }

    let regen = std::env::var("SS_REGEN_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0");
    if regen {
        std::fs::write(golden_path(), &rendered).expect("golden file is writable");
        return;
    }

    let golden = std::fs::read_to_string(golden_path()).expect("tests/golden/corpus.txt exists");
    let golden_lines: Vec<&str> = golden
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .collect();
    let measured_lines: Vec<String> = rows.iter().map(GoldenRow::to_line).collect();
    assert_eq!(
        golden_lines.len(),
        measured_lines.len(),
        "registry size changed; SS_REGEN_GOLDEN=1 to re-pin"
    );
    for (golden_line, measured) in golden_lines.iter().zip(&measured_lines) {
        assert_eq!(
            golden_line, measured,
            "golden drift (SS_REGEN_GOLDEN=1 to re-pin after an intentional change)"
        );
    }
}

/// File workloads must also run end-to-end *from their on-disk files*
/// with results identical to the embedded copies — the CLI contract.
#[test]
fn file_workloads_run_from_disk() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates")
        .join("testdata")
        .join("workloads");
    for w in WorkloadRegistry::all() {
        if w.provenance().is_none() {
            continue;
        }
        let bench = std::fs::read_to_string(dir.join(format!("{}.bench", w.name))).unwrap();
        let cubes = std::fs::read_to_string(dir.join(format!("{}.cubes", w.name))).unwrap();
        assert_eq!(bench, w.bench_text().unwrap(), "{}: .bench drift", w.name);
        assert_eq!(cubes, w.cubes_text().unwrap(), "{}: .cubes drift", w.name);
        let loaded = parse_workload(&bench, &cubes).unwrap();
        assert_eq!(loaded.set, w.test_set(), "{}", w.name);
    }
}
