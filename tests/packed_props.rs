//! Property tests pinning the packed (64-lane word-parallel) paths
//! against their scalar reference oracles, bit for bit: fault
//! simulation coverage, seed-window expansion, and the
//! embedding-map/TSL measurements the paper's tables are built from.

use proptest::prelude::*;

use ss_circuit::{random_circuit, CircuitSpec, FaultList, FaultSimulator};
use ss_core::{try_expand_seed, try_expand_seed_packed, EmbeddingMap, Engine, SegmentPlan};
use ss_gf2::{BitVec, PackedPatterns};
use ss_lfsr::LfsrKind;
use ss_testdata::{generate_test_set, CubeProfile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Packed fault simulation (with fault dropping) detects exactly
    /// the faults the one-pattern-at-a-time oracle detects, and
    /// reports exactly the same coverage — including ragged tail
    /// blocks.
    #[test]
    fn packed_fsim_is_bit_identical_to_the_scalar_oracle(
        circuit_seed in any::<u64>(),
        pattern_seed in any::<u64>(),
        count in 1usize..200,
    ) {
        let netlist = random_circuit(&CircuitSpec::tiny(), circuit_seed);
        let faults = FaultList::collapsed(&netlist);
        let fsim = FaultSimulator::new(&netlist);
        let mut rng =
            <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(pattern_seed);
        let patterns: Vec<Vec<bool>> = (0..count)
            .map(|_| {
                (0..netlist.input_count())
                    .map(|_| rand::Rng::gen(&mut rng))
                    .collect()
            })
            .collect();
        let packed = PackedPatterns::from_bools(netlist.input_count(), &patterns);
        prop_assert_eq!(
            fsim.run_packed(&faults, &packed),
            fsim.run_scalar(&faults, &patterns)
        );
        prop_assert_eq!(
            fsim.coverage_packed(&faults, &packed),
            fsim.coverage_scalar(&faults, &patterns)
        );
        // the Vec<bool> front door is the same kernel
        prop_assert_eq!(
            fsim.run(&faults, &patterns),
            fsim.run_scalar(&faults, &patterns)
        );
    }

    /// Packed seed-window expansion reproduces the scalar expansion
    /// for arbitrary hardware seeds, window lengths and both LFSR
    /// feedback structures.
    #[test]
    fn packed_expansion_equals_scalar_for_any_geometry(
        hw_seed in any::<u64>(),
        seed_seed in any::<u64>(),
        window in 1usize..130,
        galois in any::<bool>(),
    ) {
        let set = generate_test_set(&CubeProfile::mini(), 1);
        let kind = if galois { LfsrKind::Galois } else { LfsrKind::Fibonacci };
        let engine = Engine::builder()
            .window(8)
            .segment(2)
            .hw_seed(hw_seed)
            .lfsr_kind(kind)
            .build()
            .unwrap();
        let ctx = engine.synthesize(&set).unwrap();
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed_seed);
        let seed = BitVec::random(ctx.lfsr_size(), &mut rng);
        let scalar =
            try_expand_seed(ctx.lfsr(), ctx.shifter(), set.config(), &seed, window).unwrap();
        let packed =
            try_expand_seed_packed(ctx.lfsr(), ctx.shifter(), set.config(), &seed, window)
                .unwrap();
        prop_assert_eq!(packed.count(), window);
        prop_assert_eq!(packed.to_vectors(), scalar);
    }

    /// The packed embedding map — and therefore every TSL number
    /// derived from it — equals the scalar oracle's on the standard
    /// synthetic workloads, across window lengths, segment sizes and
    /// speedups.
    #[test]
    fn packed_embedding_and_tsl_equal_the_scalar_oracle(
        workload_seed in 1u64..40,
        window in 8usize..40,
        segment in 1usize..6,
        speedup in 2u64..16,
    ) {
        let set = generate_test_set(&CubeProfile::mini(), workload_seed);
        let engine = Engine::builder()
            .window(window)
            .segment(segment)
            .speedup(speedup)
            .build()
            .unwrap();
        // non-calibrated workload seeds may contain intrinsically
        // unencodable cubes; those runs are outside the property
        let encoded = match engine.encode(&set) {
            Ok(encoded) => encoded,
            Err(_) => return Ok(()),
        };
        let scalar_map = EmbeddingMap::build_scalar(
            &set,
            encoded.encoding(),
            encoded.ctx().lfsr(),
            encoded.ctx().shifter(),
        );
        let embedded = encoded.embed();
        prop_assert_eq!(embedded.embedding(), &scalar_map, "embedding maps diverged");

        let depth = set.config().depth();
        let packed_tsl = SegmentPlan::build(embedded.embedding(), segment)
            .tsl(speedup, depth)
            .vectors;
        let scalar_tsl = SegmentPlan::build(&scalar_map, segment)
            .tsl(speedup, depth)
            .vectors;
        prop_assert_eq!(packed_tsl, scalar_tsl, "TSL diverged");
    }
}
