//! Adversarial noise-injection harness for the v3 wire codec: a live
//! server is attacked with deterministically corrupted chunk streams —
//! bit flips, truncations, length-field lies, chunk reordering and
//! mid-message disconnects — and must never panic, never serve a
//! report that differs from the uncached golden answer, and surface a
//! decodable typed error (or a clean close) for every injected fault.
//!
//! Determinism: every corruption is drawn from a seeded `SmallRng`
//! (seed = `BASE_SEED` ⊕ mode ⊕ workload ⊕ round), no wall-clock
//! anywhere, so a failure reproduces exactly. `SS_NOISE_ROUNDS`
//! raises the rounds per (mode, workload) pair for soak runs (CI sets
//! it explicitly; the default keeps the debug-build test quick).

use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ss_core::Engine;
use ss_server::protocol::{read_frame, write_frame};
use ss_server::{
    report_digest, Client, Codec, CodecConfig, JobSpec, Request, Response, ServeOptions, Server,
    MAX_CHUNK_BYTES, MAX_FRAME_BYTES, MIN_CHUNK_BYTES,
};
use ss_testdata::{TestSet, WorkloadRegistry};

const BASE_SEED: u64 = 0x5EED_C0DE_CBAD_BEEF;
const WINDOW: usize = 24;
const SEGMENT: usize = 4;
const SPEEDUP: u64 = 6;

/// The five corruption modes the acceptance criteria pin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Flip one bit inside one chunk frame's payload.
    BitFlip,
    /// Cut the byte stream mid-frame, then half-close.
    Truncate,
    /// Rewrite one frame's length prefix to a lie (small or absurd).
    LengthLie,
    /// Swap two adjacent chunk frames (each individually intact).
    Reorder,
    /// Send a proper prefix of whole frames, then vanish.
    Disconnect,
}

const MODES: [Mode; 5] = [
    Mode::BitFlip,
    Mode::Truncate,
    Mode::LengthLie,
    Mode::Reorder,
    Mode::Disconnect,
];

fn rounds_per_pair() -> u64 {
    std::env::var("SS_NOISE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

fn engine() -> Engine {
    Engine::builder()
        .window(WINDOW)
        .segment(SEGMENT)
        .speedup(SPEEDUP)
        .build()
        .expect("test knobs are valid")
}

/// The uncached golden answer: the CLI `run` path, no server, no
/// cache (same construction as tests/server_concurrency.rs).
fn golden_digest(set: &TestSet) -> u64 {
    let engine = engine();
    let ctx = engine.synthesize(set).expect("synthesis succeeds");
    let (encodable, _) = ctx.encodable_subset(set);
    let mut config = *engine.config();
    config.lfsr_size = Some(ctx.lfsr_size());
    let report = Engine::from_config(config)
        .expect("pinned config is valid")
        .run(&encodable)
        .expect("engine run succeeds");
    report_digest(&report)
}

fn corpus() -> Vec<(String, JobSpec, u64)> {
    ["tiny-1", "tiny-pad", "mini-7"]
        .iter()
        .map(|name| {
            let set = WorkloadRegistry::find(name)
                .expect("registry entry")
                .test_set();
            let golden = golden_digest(&set);
            (
                name.to_string(),
                JobSpec::new(&set, engine().config()),
                golden,
            )
        })
        .collect()
}

/// Opens a raw connection and hand-negotiates the codec, returning the
/// stream and the agreed chain — the harness's hands on the wire.
fn negotiate(addr: SocketAddr, offer: CodecConfig) -> (TcpStream, Codec) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    write_frame(&mut stream, &Request::Hello(offer).encode()).expect("hello");
    let payload = read_frame(&mut stream).expect("hello ack frame");
    match Response::decode(&payload).expect("hello ack decodes") {
        Response::HelloAck(agreed) => {
            assert_eq!(agreed, offer, "in-range offer must be accepted as-is");
            (stream, Codec::new(agreed))
        }
        other => panic!("hello answered with {other:?}"),
    }
}

/// Frame payloads → the exact wire segments (length prefix + payload)
/// the client would send.
fn wire_segments(frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
    frames
        .iter()
        .map(|frame| {
            let mut seg = (frame.len() as u32).to_be_bytes().to_vec();
            seg.extend_from_slice(frame);
            seg
        })
        .collect()
}

/// Applies one deterministic corruption, returning the bytes to put on
/// the wire.
fn corrupt(mode: Mode, segments: &[Vec<u8>], rng: &mut SmallRng) -> Vec<u8> {
    let mut segments = segments.to_vec();
    match mode {
        Mode::BitFlip => {
            let at = rng.gen_range(0..segments.len());
            // flip inside the frame payload, not the length prefix
            // (prefix lies are LengthLie's job)
            let bit = rng.gen_range(0..(segments[at].len() - 4) * 8);
            segments[at][4 + bit / 8] ^= 1 << (bit % 8);
            segments.concat()
        }
        Mode::Truncate => {
            let all = segments.concat();
            // cut somewhere strictly inside the stream
            let cut = rng.gen_range(1..all.len());
            all[..cut].to_vec()
        }
        Mode::LengthLie => {
            let at = rng.gen_range(0..segments.len());
            let declared = segments[at].len() as u32 - 4;
            let lie: u32 = if rng.gen_bool(0.5) {
                // absurd: past the frame cap, rejected before allocation
                MAX_FRAME_BYTES as u32 + 1 + rng.gen_range(0..1024u32)
            } else {
                // subtle: off by a little, desynchronising the stream
                declared.wrapping_add(rng.gen_range(1..16))
            };
            segments[at][..4].copy_from_slice(&lie.to_be_bytes());
            segments.concat()
        }
        Mode::Reorder => {
            assert!(segments.len() >= 2, "reorder needs a multi-chunk message");
            let at = rng.gen_range(0..segments.len() - 1);
            segments.swap(at, at + 1);
            segments.concat()
        }
        Mode::Disconnect => {
            assert!(
                segments.len() >= 2,
                "disconnect needs a multi-chunk message"
            );
            let keep = rng.gen_range(1..segments.len());
            segments[..keep].concat()
        }
    }
}

/// What the server did about an injected fault.
#[derive(Debug)]
enum Outcome {
    /// A decodable, typed protocol error came back.
    TypedError(String),
    /// The connection closed with no (complete) reply.
    CleanClose,
}

/// Runs one corrupted submission and classifies the server's
/// reaction. Panics — failing the harness — if the server answers the
/// corrupted submit with anything but a typed error or a close.
fn inject(addr: SocketAddr, spec: &JobSpec, mode: Mode, seed: u64) -> Outcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    // tiny chunks force multi-frame messages; compression only in
    // modes that tolerate a possibly-single-frame compressed payload
    let compress = !matches!(mode, Mode::Reorder | Mode::Disconnect) && rng.gen_bool(0.5);
    let offer = CodecConfig {
        compress,
        chunk_bytes: MIN_CHUNK_BYTES,
    };
    let (mut stream, codec) = negotiate(addr, offer);
    let payload = Request::Submit(spec.clone()).encode();
    let frames = codec.encode_frames(&payload).expect("encode");
    let segments = wire_segments(&frames);
    let wire = corrupt(mode, &segments, &mut rng);

    // a large write can fail once the server has already rejected the
    // stream and closed — that's a valid detection, not a test error
    let wrote = stream.write_all(&wire).and_then(|()| stream.flush());
    let _ = stream.shutdown(Shutdown::Write);
    match codec.read_message(&mut stream) {
        Ok((reply, _)) => match Response::decode(&reply).expect("reply must be decodable") {
            Response::Error(message) => Outcome::TypedError(message),
            other => panic!("corrupted submit ({mode:?}, seed {seed:#x}) answered {other:?}"),
        },
        Err(err) => {
            assert!(
                wrote.is_err() || matches!(err, ss_server::CodecError::Io(_)),
                "client-side decode of the reply failed oddly: {err}"
            );
            Outcome::CleanClose
        }
    }
}

/// The headline harness: every mode × every corpus workload × N
/// seeded rounds against one live server; after every fault the same
/// workload must still be served bit-identical to the golden answer.
#[test]
fn corrupted_streams_never_panic_and_never_change_answers() {
    let corpus = corpus();
    let rounds = rounds_per_pair();
    let handle = Server::bind(&ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    })
    .expect("bind loopback")
    .spawn();

    let mut typed_errors = 0u64;
    let mut clean_closes = 0u64;
    for (mode_at, mode) in MODES.iter().enumerate() {
        for (work_at, (name, spec, golden)) in corpus.iter().enumerate() {
            for round in 0..rounds {
                let seed = BASE_SEED ^ ((mode_at as u64) << 24) ^ ((work_at as u64) << 16) ^ round;
                match inject(handle.addr(), spec, *mode, seed) {
                    Outcome::TypedError(message) => {
                        typed_errors += 1;
                        assert!(
                            !message.is_empty(),
                            "typed error for {mode:?} on {name} is empty"
                        );
                    }
                    Outcome::CleanClose => clean_closes += 1,
                }
            }
            // the fault must not have poisoned anything: a clean
            // submission still matches the uncached golden answer
            let mut client = Client::connect(handle.addr()).expect("clean connect");
            let (_, report) = client.run(spec).expect("clean run after corruption");
            assert_eq!(
                report.digest, *golden,
                "{name}: digest diverged from golden after {mode:?} injections"
            );
        }
    }

    // detection telemetry: flips and reorders answer typed errors, so
    // both outcome classes and the CRC counter must have fired
    assert!(typed_errors > 0, "no injected fault surfaced a typed error");
    assert!(clean_closes > 0, "no injected fault ended in a close");
    let mut client = Client::connect(handle.addr()).expect("stats connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.codec.crc_rejects > 0,
        "bit flips ran but the CRC reject counter never moved"
    );
    assert!(stats.codec.connections_v3 > 0);
    assert!(stats.codec.frames_received > stats.codec.crc_rejects);
    handle.shutdown();
}

/// Acceptance: a payload past the 64 MiB single-frame cap streams
/// through the chunk codec bit-identically — and the legacy path
/// really cannot carry it.
#[test]
fn payload_past_the_frame_cap_round_trips_chunked() {
    let len = MAX_FRAME_BYTES + MAX_FRAME_BYTES / 16; // 68 MiB
    let mut message = vec![0u8; len];
    let mut state = BASE_SEED;
    for chunk in message.chunks_mut(8) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let bytes = state.to_be_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }

    // the v2 scheme refuses it outright
    let mut sink = Vec::new();
    let err = write_frame(&mut sink, &message).expect_err("one frame cannot carry 68 MiB");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // the v3 chunk codec streams it
    let codec = Codec::new(CodecConfig {
        compress: false,
        chunk_bytes: MAX_CHUNK_BYTES,
    });
    let mut wire = Vec::with_capacity(len + len / 1024);
    let wrote = codec
        .write_message(&mut wire, &message)
        .expect("chunked write");
    assert_eq!(wrote.raw_bytes as usize, len);
    assert_eq!(
        wrote.frames as usize,
        len.div_ceil(MAX_CHUNK_BYTES as usize)
    );
    let mut cursor = &wire[..];
    let (back, read) = codec.read_message(&mut cursor).expect("chunked read");
    assert!(cursor.is_empty());
    assert_eq!(read.frames, wrote.frames);
    assert!(back == message, "68 MiB round trip must be bit-identical");
}

/// Acceptance: a v2 peer (no Hello, plain frames, version-2 stamps)
/// completes an uncorrupted job against the v3 server, and gets the
/// stats layout its generation expects.
#[test]
fn legacy_v2_client_completes_against_v3_server() {
    let (_, spec, golden) = corpus().remove(0);
    let handle = Server::bind(&ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    })
    .expect("bind loopback")
    .spawn();

    let mut legacy = Client::connect_legacy(handle.addr()).expect("legacy connect");
    assert!(legacy.codec_config().is_none(), "legacy mode has no codec");
    let (_, report) = legacy.run(&spec).expect("legacy run");
    assert_eq!(
        report.digest, golden,
        "legacy client must get the golden answer"
    );
    // the v2 stats layout carries no codec counters
    let stats = legacy.stats().expect("legacy stats");
    assert_eq!(stats.codec, ss_server::CodecCounters::default());
    assert_eq!(stats.jobs_done, 1);

    // a negotiated client sees the legacy connection counted
    let mut modern = Client::connect(handle.addr()).expect("negotiated connect");
    assert!(modern.codec_config().is_some());
    let (_, warm) = modern.run(&spec).expect("negotiated run");
    assert_eq!(warm.digest, golden);
    assert!(
        warm.cached(),
        "same key must hit the cache across generations"
    );
    let stats = modern.stats().expect("negotiated stats");
    assert_eq!(stats.codec.connections_v2, 1);
    assert_eq!(stats.codec.connections_v3, 1);
    assert!(stats.codec.frames_sent > 0 && stats.codec.frames_received > 0);
    assert!(
        stats.codec.raw_tx_bytes > stats.codec.wire_tx_bytes,
        "compressed replies must net-save bytes"
    );
    handle.shutdown();
}
