//! Integration tests for the extension surface: scan power, SoC
//! sharing, RTL emission and response compaction working together with
//! the core pipeline.

use ss_core::{
    emit_decompressor_rtl, estimated_core_area_ge, Decompressor, Pipeline, PipelineConfig, SocPlan,
};
use ss_gf2::BitVec;
use ss_lfsr::{Misr, SkipCircuit};
use ss_testdata::{generate_test_set, max_wtm, sequence_power, CubeProfile};

fn run_mini(
    seed: u64,
) -> (
    ss_testdata::TestSet,
    PipelineConfig,
    ss_core::PipelineReport,
) {
    let set = generate_test_set(&CubeProfile::mini(), seed);
    let config = PipelineConfig {
        window: 30,
        segment: 5,
        speedup: 6,
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(&set, config).unwrap().run().unwrap();
    (set, config, report)
}

#[test]
fn applied_sequence_power_is_within_bounds() {
    let (set, config, report) = run_mini(3);
    let pipeline = Pipeline::new(&set, config).unwrap();
    let mut dec = Decompressor::new(
        pipeline.lfsr().clone(),
        config.speedup,
        pipeline.shifter().clone(),
        set.config(),
        report.mode_select.clone(),
    );
    let trace = dec.run(&report.encoding, &report.plan);
    let power = sequence_power(&trace.vectors, set.config());
    assert_eq!(power.vectors as u64, trace.tsl());
    assert!(power.peak_wtm <= max_wtm(set.config()));
    assert!(
        power.total_wtm > 0,
        "pseudorandom vectors cause transitions"
    );
    // shortening the sequence also cuts total shift energy vs the
    // full-window original
    let full_power_per_vector = max_wtm(set.config()) as f64 / 2.0;
    let orig_estimate = report.tsl_original as f64 * full_power_per_vector;
    assert!(
        (power.total_wtm as f64) < orig_estimate,
        "shortened sequence must not exceed the original's energy estimate"
    );
}

#[test]
fn soc_plan_from_two_different_cores() {
    let (_, _, report_a) = run_mini(3);
    let (_, _, report_b) = run_mini(4);
    let mut plan = SocPlan::new();
    plan.add_core("core-a", &report_a);
    plan.add_core("core-b", &report_b);
    assert_eq!(plan.cores().len(), 2);
    assert_eq!(plan.total_tdv(), report_a.tdv + report_b.tdv);
    assert_eq!(
        plan.total_tsl(),
        report_a.tsl_proposed + report_b.tsl_proposed
    );
    assert!(plan.total_ge() < plan.unshared_ge());
    let frac = plan.area_fraction(estimated_core_area_ge(2 * 64));
    assert!(frac > 0.0 && frac < 1.0);
}

#[test]
fn rtl_matches_the_simulated_hardware() {
    // the emitted RTL must reference exactly the synthesised gates
    let (set, config, _) = run_mini(5);
    let pipeline = Pipeline::new(&set, config).unwrap();
    let skip = SkipCircuit::new(pipeline.lfsr(), config.speedup).unwrap();
    let rtl = emit_decompressor_rtl(pipeline.lfsr(), &skip, pipeline.shifter());
    let net = skip.synthesize();
    for g in 0..net.gate_count() {
        assert!(
            rtl.contains(&format!("skip_t{g}")),
            "gate {g} missing from RTL"
        );
    }
    for c in 0..pipeline.shifter().output_count() {
        assert!(
            rtl.contains(&format!("scan_in[{c}]")),
            "chain {c} missing from RTL"
        );
    }
    assert_eq!(rtl.matches("endmodule").count(), 1);
}

#[test]
fn misr_signature_distinguishes_fault_injection_end_to_end() {
    // compact the applied vectors as "responses" (identity CUT):
    // corrupting any single applied vector changes the signature
    let (set, config, report) = run_mini(6);
    let pipeline = Pipeline::new(&set, config).unwrap();
    let mut dec = Decompressor::new(
        pipeline.lfsr().clone(),
        config.speedup,
        pipeline.shifter().clone(),
        set.config(),
        report.mode_select.clone(),
    );
    let trace = dec.run(&report.encoding, &report.plan);
    let width = 16.min(set.config().cells());
    let slice = |v: &BitVec| BitVec::from_bits((0..width).map(|i| v.get(i)));

    let mut reference = Misr::new(
        ss_lfsr::Lfsr::fibonacci(ss_gf2::primitive_poly(24).unwrap()),
        width,
    )
    .unwrap();
    for v in &trace.vectors {
        reference.compact(&slice(v));
    }

    let mut corrupted = Misr::new(
        ss_lfsr::Lfsr::fibonacci(ss_gf2::primitive_poly(24).unwrap()),
        width,
    )
    .unwrap();
    for (i, v) in trace.vectors.iter().enumerate() {
        let mut r = slice(v);
        if i == trace.vectors.len() / 2 {
            r.toggle(3);
        }
        corrupted.compact(&r);
    }
    assert_ne!(reference.signature(), corrupted.signature());
}

#[test]
fn pipeline_report_is_self_consistent() {
    let (set, _, report) = run_mini(7);
    // plan invariants against the encoding
    assert_eq!(report.plan.seed_count(), report.seeds);
    assert_eq!(report.encoding.seeds.len(), report.seeds);
    let group_total: usize = report.plan.groups().iter().map(|(_, s)| s.len()).sum();
    assert_eq!(group_total, report.seeds, "every seed belongs to one group");
    // group ordering ascends
    let counts: Vec<usize> = report.plan.groups().iter().map(|(c, _)| *c).collect();
    assert!(counts.windows(2).all(|w| w[0] < w[1]));
    // embedding map covers every cube
    assert!(report.embedding.validate());
    assert_eq!(report.embedding.cube_count(), set.len());
    // per-seed TSL sums to the total
    assert_eq!(
        report.tsl_report.per_seed.iter().sum::<u64>(),
        report.tsl_report.vectors
    );
}
