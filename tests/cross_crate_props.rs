//! Property-based tests spanning the workspace crates (proptest).

use proptest::prelude::*;

use ss_core::{try_expand_seed, Pipeline, PipelineConfig};
use ss_gf2::{berlekamp_massey, primitive_poly, BitVec};
use ss_lfsr::{Lfsr, LfsrKind, PhaseShifter, SkipCircuit, StateSkipLfsr, XorNetwork};
use ss_testdata::{ScanConfig, TestCube, TestSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// T^k jump == k normal steps, for any size/seed/k and both forms.
    #[test]
    fn skip_jump_equals_k_steps(
        n in 3usize..24,
        k in 1u64..64,
        seed_bits in any::<u64>(),
        galois in any::<bool>(),
    ) {
        let kind = if galois { LfsrKind::Galois } else { LfsrKind::Fibonacci };
        let mut lfsr = Lfsr::try_new(primitive_poly(n).unwrap(), kind).unwrap();
        let seed = BitVec::from_u128(n, (seed_bits as u128) & ((1u128 << n) - 1));
        lfsr.load(&seed);
        let skip = SkipCircuit::new(&lfsr, k).unwrap();
        let jumped = skip.jump(lfsr.state());
        lfsr.step_by(k);
        prop_assert_eq!(jumped, lfsr.state().clone());
    }

    /// advance_states lands exactly for arbitrary gaps.
    #[test]
    fn advance_states_lands_exactly(
        n in 3usize..16,
        k in 1u64..32,
        gap in 0u64..500,
        seed_bits in any::<u64>(),
    ) {
        let poly = primitive_poly(n).unwrap();
        let seed = BitVec::from_u128(n, (seed_bits as u128) & ((1u128 << n) - 1));
        let mut reference = Lfsr::fibonacci(poly.clone());
        reference.load(&seed);
        reference.step_by(gap);
        let mut ss = StateSkipLfsr::new(Lfsr::fibonacci(poly), k).unwrap();
        ss.load(&seed);
        let clocks = ss.advance_states(gap);
        prop_assert_eq!(ss.state(), reference.state());
        prop_assert!(clocks <= gap, "skip mode never needs more clocks than states");
    }

    /// Berlekamp–Massey recovers exactly degree n from 2n output bits
    /// of a maximal-length LFSR with a nonzero seed.
    #[test]
    fn bm_recovers_lfsr_degree(n in 3usize..16, seed_bits in 1u64..u64::MAX) {
        let mut lfsr = Lfsr::fibonacci(primitive_poly(n).unwrap());
        let raw = (seed_bits as u128) & ((1u128 << n) - 1);
        let seed = BitVec::from_u128(n, if raw == 0 { 1 } else { raw });
        lfsr.load(&seed);
        let seq = lfsr.output_sequence(2 * n + 4);
        let (_, l) = berlekamp_massey(&seq);
        prop_assert_eq!(l, n);
    }

    /// An XOR network synthesised from random rows computes the same
    /// function as the matrix it came from.
    #[test]
    fn xor_network_is_functionally_exact(
        rows in 1usize..10,
        cols in 1usize..12,
        data in any::<u64>(),
        input in any::<u64>(),
    ) {
        let mut m = ss_gf2::BitMatrix::zeros(rows, cols);
        let mut bits = data;
        for r in 0..rows {
            for c in 0..cols {
                if bits & 1 == 1 {
                    m.set(r, c, true);
                }
                bits = bits.rotate_right(1) ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        let net = XorNetwork::synthesize(&m);
        let v = BitVec::from_u128(cols, (input as u128) & ((1u128 << cols) - 1));
        prop_assert_eq!(net.eval(&v), m.mul_vec(&v));
        // sharing never costs more than the naive chain implementation
        let naive: usize = (0..rows).map(|r| m.row(r).count_ones().saturating_sub(1)).sum();
        prop_assert!(net.gate_count() <= naive.max(1));
    }

    /// Expanded windows match cube placements for arbitrary single-cube
    /// test sets: encode, expand, verify.
    #[test]
    fn single_cube_sets_always_encode_and_embed(
        cube_seed in any::<u64>(),
        specified in 1usize..10,
    ) {
        let scan = ScanConfig::new(4, 8).unwrap();
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(cube_seed);
        let cube = TestCube::random(scan.cells(), specified, &mut rng);
        let mut set = TestSet::new(scan);
        set.push(cube).unwrap();
        let config = PipelineConfig {
            window: 6,
            segment: 2,
            speedup: 3,
            lfsr_size: Some(16),
            ..PipelineConfig::default()
        };
        let pipeline = Pipeline::new(&set, config).unwrap();
        // an intrinsically unencodable (LFSR, shifter, cube) triple is
        // possible (if astronomically rare) for random cubes; such
        // cases are outside the property and rejected
        prop_assume!(pipeline.encodable_subset().1.is_empty());
        let report = pipeline.run().unwrap();
        prop_assert_eq!(report.seeds, 1);
        let windows = try_expand_seed(
            pipeline.lfsr(),
            pipeline.shifter(),
            scan,
            &report.encoding.seeds[0].seed,
            6,
        )
        .unwrap();
        let p = report.encoding.seeds[0].placements[0];
        prop_assert!(set.cube(p.cube).matches(&windows[p.position]));
    }

    /// Cube merge: a fill of the merged cube satisfies both parents.
    #[test]
    fn merge_soundness(a_seed in any::<u64>(), b_seed in any::<u64>()) {
        let mut rng_a = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(a_seed);
        let mut rng_b = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(b_seed);
        let a = TestCube::random(32, 8, &mut rng_a);
        let b = TestCube::random(32, 8, &mut rng_b);
        match a.merge(&b) {
            Some(m) => {
                let fill = m.random_fill(&mut rng_a);
                prop_assert!(a.matches(&fill));
                prop_assert!(b.matches(&fill));
            }
            None => {
                // incompatible: some position must disagree under both cares
                let mut found = false;
                for i in 0..32 {
                    if let (Some(x), Some(y)) = (a.get(i), b.get(i)) {
                        if x != y {
                            found = true;
                            break;
                        }
                    }
                }
                prop_assert!(found, "merge=None must be justified by a conflict");
            }
        }
    }

    /// Phase shifter outputs stay linearly independent whenever
    /// m <= n, for random synthesis seeds.
    #[test]
    fn phase_shifter_independence(seed in any::<u64>(), m in 1usize..12) {
        let n = 12;
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        let ps = PhaseShifter::synthesize(n, m, 3, &mut rng).unwrap();
        prop_assert_eq!(ps.rows().rank(), m);
    }
}
